"""Recursive-descent parser for the ProbZélus-like surface syntax.

Produces the kernel AST of :mod:`repro.core.ast` (with surface sugar,
which :func:`repro.core.compiler.prepare_program` eliminates). The
grammar follows the paper's concrete examples::

    program   ::= decl*
    decl      ::= "let" "node" IDENT params "=" expr
    params    ::= IDENT | "(" IDENT ("," IDENT)* ")" | "(" ")"
    expr      ::= where_expr
    where_expr::= arrow_expr ("where" "rec" equations)?
    equations ::= equation ("and" equation)*
    equation  ::= "init" IDENT "=" atom
                | IDENT "=" expr
                | "(" ")" "=" expr          (unit equation: fresh name)
    arrow_expr::= cmp_expr (("->"|"fby") arrow_expr)?
    cmp_expr  ::= add_expr (("<"|">"|"<="|">="|"="|"<>") add_expr)?
    add_expr  ::= mul_expr (("+"|"-") mul_expr)*
    mul_expr  ::= unary (("*"|"/") unary)*
    unary     ::= "-" unary | "pre" unary | "last" IDENT | postfix
    postfix   ::= atom atom*                 (application, left assoc)
    atom      ::= literal | IDENT | "(" expr ("," expr)* ")"
                | "if" expr "then" expr "else" expr
                | "present" expr "then" expr "else" expr
                | "reset" expr "every" expr
                | "sample" atom | "factor" atom
                | "observe" "(" expr "," expr ")"
                | "infer" NUMBER IDENT atom

Applications of known node names become :class:`~repro.core.ast.App`;
applications of anything else become external operator calls
(:class:`~repro.core.ast.Op`). Tuples are right-nested pairs, matching
the compiler's multi-parameter convention.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Set, Tuple

from repro.core.ast import (
    App,
    Arrow,
    Const,
    Eq,
    Equation,
    Expr,
    Factor,
    Fby,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    PreE,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)
from repro.errors import LanguageError
from repro.frontend.lexer import Token, tokenize

__all__ = ["ParseError", "parse_program", "parse_expr"]


class ParseError(LanguageError):
    """Syntactically invalid input."""


_BINOPS = {
    "+": "add",
    "-": "sub",
    "*": "mul",
    "/": "div",
    "<": "lt",
    ">": "gt",
    "<=": "le",
    ">=": "ge",
    "=": "eq",
    "<>": "ne",
}

_unit_counter = itertools.count()


class _Parser:
    def __init__(self, tokens: List[Token], node_names: Set[str]):
        self.tokens = tokens
        self.pos = 0
        self.node_names = node_names

    # ------------------------------------------------------------------
    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def next(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def at(self, kind: str, text: Optional[str] = None, ahead: int = 0) -> bool:
        token = self.peek(ahead)
        return token.kind == kind and (text is None or token.text == text)

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.peek()
        if not self.at(kind, text):
            want = text if text is not None else kind
            raise ParseError(
                f"expected {want!r}, found {token.text!r} at "
                f"{token.line}:{token.col}"
            )
        return self.next()

    def accept(self, kind: str, text: Optional[str] = None) -> bool:
        if self.at(kind, text):
            self.next()
            return True
        return False

    # ------------------------------------------------------------------
    def parse_program(self) -> Program:
        decls = []
        while not self.at("eof"):
            decls.append(self.parse_decl())
        return Program(tuple(decls))

    def parse_decl(self) -> NodeDecl:
        self.expect("keyword", "let")
        self.expect("keyword", "node")
        name = self.expect("ident").text
        params = self.parse_params()
        self.expect("symbol", "=")
        body = self.parse_expr()
        self.node_names.add(name)
        return NodeDecl(name, params, body)

    def parse_params(self) -> Tuple[str, ...]:
        if self.at("ident"):
            return (self.next().text,)
        self.expect("symbol", "(")
        if self.accept("symbol", ")"):
            return ("_unit_input",)
        names = [self.expect("ident").text]
        while self.accept("symbol", ","):
            names.append(self.expect("ident").text)
        self.expect("symbol", ")")
        return tuple(names)

    # ------------------------------------------------------------------
    def parse_expr(self) -> Expr:
        expr = self.parse_arrow()
        if self.accept("keyword", "where"):
            self.expect("keyword", "rec")
            equations = [self.parse_equation()]
            while self.at("keyword", "and"):
                self.next()
                equations.append(self.parse_equation())
            return Where(expr, tuple(equations))
        return expr

    def parse_equation(self) -> Equation:
        if self.accept("keyword", "init"):
            name = self.expect("ident").text
            self.expect("symbol", "=")
            value = self.parse_arrow()
            if isinstance(value, Const):
                return InitEq(name, value)
            # `init x = e` with a non-constant e: allowed in the surface
            # language; encoded as `x = e -> pre x` (the value computed
            # at the first instant, held forever after).
            return Eq(name, Arrow(value, PreE(Var(name))))
        if self.at("symbol", "(") and self.at("symbol", ")", ahead=1):
            self.next()
            self.next()
            self.expect("symbol", "=")
            name = f"_unit{next(_unit_counter)}"
            return Eq(name, self.parse_arrow())
        name = self.expect("ident").text
        self.expect("symbol", "=")
        return Eq(name, self.parse_arrow())

    def parse_arrow(self) -> Expr:
        left = self.parse_cmp()
        if self.accept("symbol", "->"):
            return Arrow(left, self.parse_arrow())
        if self.accept("keyword", "fby"):
            return Fby(left, self.parse_arrow())
        return left

    def parse_cmp(self) -> Expr:
        left = self.parse_add()
        token = self.peek()
        if token.kind == "symbol" and token.text in ("<", ">", "<=", ">=", "=", "<>"):
            self.next()
            right = self.parse_add()
            return Op(_BINOPS[token.text], (left, right))
        return left

    def parse_add(self) -> Expr:
        expr = self.parse_mul()
        while self.at("symbol", "+") or self.at("symbol", "-"):
            op_text = self.next().text
            expr = Op(_BINOPS[op_text], (expr, self.parse_mul()))
        return expr

    def parse_mul(self) -> Expr:
        expr = self.parse_unary()
        while self.at("symbol", "*") or self.at("symbol", "/"):
            op_text = self.next().text
            expr = Op(_BINOPS[op_text], (expr, self.parse_unary()))
        return expr

    def parse_unary(self) -> Expr:
        if self.accept("symbol", "-"):
            return Op("neg", (self.parse_unary(),))
        if self.accept("keyword", "pre"):
            return PreE(self.parse_unary())
        if self.accept("keyword", "last"):
            return Last(self.expect("ident").text)
        return self.parse_postfix()

    def parse_postfix(self) -> Expr:
        expr = self.parse_atom()
        # juxtaposition application: f (e) or op (e1, e2)
        while self.at("symbol", "(") or self.at("ident") or self.at("number"):
            if not isinstance(expr, Var):
                break
            arg = self.parse_atom()
            expr = self._apply(expr.name, arg)
        return expr

    def _apply(self, func: str, arg: Expr) -> Expr:
        if func in self.node_names:
            return App(func, arg)
        # external operator: flatten tuple arguments
        args = _flatten_pair(arg)
        return Op(func, args)

    # ------------------------------------------------------------------
    def parse_atom(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            self.next()
            if "." in token.text or "e" in token.text or "E" in token.text:
                return Const(float(token.text))
            return Const(float(token.text))  # numerals are floats, OCaml-ish
        if token.kind == "keyword" and token.text in ("true", "false"):
            self.next()
            return Const(token.text == "true")
        if token.kind == "keyword":
            return self.parse_keyword_atom()
        if token.kind == "ident":
            self.next()
            return Var(token.text)
        if self.accept("symbol", "("):
            if self.accept("symbol", ")"):
                return Const(())
            exprs = [self.parse_expr()]
            while self.accept("symbol", ","):
                exprs.append(self.parse_expr())
            self.expect("symbol", ")")
            result = exprs[-1]
            for prev in reversed(exprs[:-1]):
                result = Pair(prev, result)
            return result
        raise ParseError(
            f"unexpected token {token.text!r} at {token.line}:{token.col}"
        )

    def parse_keyword_atom(self) -> Expr:
        token = self.peek()
        if self.accept("keyword", "if"):
            cond = self.parse_expr()
            self.expect("keyword", "then")
            then_branch = self.parse_expr()
            self.expect("keyword", "else")
            else_branch = self.parse_expr()
            return Op("if", (cond, then_branch, else_branch))
        if self.accept("keyword", "present"):
            cond = self.parse_expr()
            self.expect("keyword", "then")
            then_branch = self.parse_expr()
            self.expect("keyword", "else")
            else_branch = self.parse_expr()
            return Present(cond, then_branch, else_branch)
        if self.accept("keyword", "reset"):
            body = self.parse_expr()
            self.expect("keyword", "every")
            every = self.parse_expr()
            return Reset(body, every)
        if self.accept("keyword", "sample"):
            return Sample(self.parse_atom())
        if self.accept("keyword", "factor"):
            return Factor(self.parse_atom())
        if self.accept("keyword", "observe"):
            self.expect("symbol", "(")
            dist = self.parse_expr()
            self.expect("symbol", ",")
            value = self.parse_expr()
            self.expect("symbol", ")")
            return Observe(dist, value)
        if self.accept("keyword", "infer"):
            particles = 100
            if self.at("number"):
                particles = int(float(self.next().text))
            func = self.expect("ident").text
            arg = self.parse_atom()
            if func not in self.node_names:
                raise ParseError(f"infer of undeclared node {func!r}")
            return Infer(App(func, arg), particles=particles)
        if self.accept("keyword", "automaton"):
            return self.parse_automaton()
        raise ParseError(
            f"unexpected keyword {token.text!r} at {token.line}:{token.col}"
        )

    def parse_automaton(self) -> Expr:
        """``automaton | S -> do e until c then T ... | S' -> do e done``.

        Bodies are expressions; transitions are weak (Fig. 5's
        ``until ... then``). Guards may reference the mode's output
        through the reserved variable ``o``.
        """
        from repro.core.automata import AutomatonE, AutoStateE

        states = []
        while self.accept("symbol", "|"):
            name = self.expect("ident").text
            self.expect("symbol", "->")
            self.expect("keyword", "do")
            body = self.parse_expr()
            transitions = []
            while self.accept("keyword", "until"):
                cond = self.parse_expr()
                self.expect("keyword", "then")
                target = self.expect("ident").text
                transitions.append((cond, target))
            self.accept("keyword", "done")
            states.append(AutoStateE(name, body, tuple(transitions)))
        if not states:
            raise ParseError("automaton needs at least one '| State -> do ...'")
        return AutomatonE(tuple(states))


def _flatten_pair(expr: Expr) -> Tuple[Expr, ...]:
    """Right-nested pairs to an argument tuple (for operator calls)."""
    args: List[Expr] = []
    cursor = expr
    while isinstance(cursor, Pair):
        args.append(cursor.first)
        cursor = cursor.second
    args.append(cursor)
    return tuple(args)


def parse_program(source: str) -> Program:
    """Parse a whole program (a sequence of node declarations)."""
    parser = _Parser(tokenize(source), set())
    return parser.parse_program()


def parse_expr(source: str, node_names: Optional[Set[str]] = None) -> Expr:
    """Parse a single expression (for tests and the REPL-style API)."""
    parser = _Parser(tokenize(source), node_names or set())
    expr = parser.parse_expr()
    parser.expect("eof")
    return expr
