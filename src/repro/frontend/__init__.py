"""Concrete-syntax front end: lexer and parser for ProbZélus-like sources."""

from repro.frontend.lexer import LexError, Token, tokenize
from repro.frontend.parser import ParseError, parse_expr, parse_program

__all__ = [
    "tokenize",
    "Token",
    "LexError",
    "parse_program",
    "parse_expr",
    "ParseError",
]
