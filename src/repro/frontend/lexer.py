"""Lexer for the concrete ProbZélus-like surface syntax.

Tokenizes the OCaml-flavoured syntax the paper uses::

    let node hmm y = x where
      rec x = sample (gaussian (0. -> pre x, speed_x))
      and () = observe (gaussian (x, noise_x), y)

Comments are OCaml-style ``(* ... *)`` (nestable). Floats accept the
OCaml trailing-dot form (``0.``), and the OCaml float operators
``+. -. *. /.`` are accepted as synonyms of the plain ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import LanguageError

__all__ = ["Token", "LexError", "tokenize", "KEYWORDS"]


class LexError(LanguageError):
    """Invalid input at the character level."""


KEYWORDS = {
    "let",
    "node",
    "where",
    "rec",
    "and",
    "init",
    "if",
    "then",
    "else",
    "present",
    "reset",
    "every",
    "last",
    "pre",
    "fby",
    "sample",
    "observe",
    "factor",
    "infer",
    "true",
    "false",
    "automaton",
    "until",
    "do",
    "done",
    "in",
}

# multi-character symbols first (longest match wins)
_SYMBOLS = [
    "->",
    "+.",
    "-.",
    "*.",
    "/.",
    "<=",
    ">=",
    "<>",
    "(",
    ")",
    ",",
    "=",
    "+",
    "-",
    "*",
    "/",
    "<",
    ">",
    "|",
]


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/col)."""

    kind: str  # "ident", "keyword", "number", "symbol", "eof"
    text: str
    line: int
    col: int

    def __repr__(self) -> str:
        return f"Token({self.kind}:{self.text!r}@{self.line}:{self.col})"


def tokenize(source: str) -> List[Token]:
    """Tokenize ``source``; always ends with an ``eof`` token."""
    tokens: List[Token] = []
    pos, line, col = 0, 1, 1
    n = len(source)

    def advance(count: int) -> None:
        nonlocal pos, line, col
        for _ in range(count):
            if source[pos] == "\n":
                line += 1
                col = 1
            else:
                col += 1
            pos += 1

    while pos < n:
        ch = source[pos]
        # whitespace
        if ch in " \t\r\n":
            advance(1)
            continue
        # nested comments (* ... *)
        if source.startswith("(*", pos):
            depth = 0
            start_line, start_col = line, col
            while pos < n:
                if source.startswith("(*", pos):
                    depth += 1
                    advance(2)
                elif source.startswith("*)", pos):
                    depth -= 1
                    advance(2)
                    if depth == 0:
                        break
                else:
                    advance(1)
            if depth != 0:
                raise LexError(
                    f"unterminated comment starting at {start_line}:{start_col}"
                )
            continue
        # numbers: 123, 1.5, 0., .5 is not allowed (OCaml style)
        if ch.isdigit():
            start = pos
            start_line, start_col = line, col
            while pos < n and source[pos].isdigit():
                advance(1)
            is_float = False
            if pos < n and source[pos] == ".":
                # not part of a float operator like "1.+"? OCaml allows 0.
                is_float = True
                advance(1)
                while pos < n and source[pos].isdigit():
                    advance(1)
            if pos < n and source[pos] in "eE":
                is_float = True
                advance(1)
                if pos < n and source[pos] in "+-":
                    advance(1)
                while pos < n and source[pos].isdigit():
                    advance(1)
            text = source[start:pos]
            tokens.append(Token("number", text, start_line, start_col))
            continue
        # identifiers / keywords
        if ch.isalpha() or ch == "_":
            start = pos
            start_line, start_col = line, col
            while pos < n and (source[pos].isalnum() or source[pos] in "_'"):
                advance(1)
            text = source[start:pos]
            kind = "keyword" if text in KEYWORDS else "ident"
            tokens.append(Token(kind, text, start_line, start_col))
            continue
        # symbols
        for sym in _SYMBOLS:
            if source.startswith(sym, pos):
                start_line, start_col = line, col
                advance(len(sym))
                # normalize OCaml float operators
                text = sym[0] if sym in ("+.", "-.", "*.", "/.") else sym
                tokens.append(Token("symbol", text, start_line, start_col))
                break
        else:
            raise LexError(f"unexpected character {ch!r} at {line}:{col}")

    tokens.append(Token("eof", "", line, col))
    return tokens
