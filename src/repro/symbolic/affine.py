"""Affine-form extraction from symbolic expressions.

Conjugacy detection at ``assume`` time (Section 5.2) needs to recognize
expressions of the shape ``a * X + b`` for a *single* random variable
``X`` — the linear-Gaussian relationships of the Kalman and Outlier
benchmarks — and the multivariate analogue ``A @ X + b`` used by the
robot example. Anything else is non-affine and forces realization of the
referenced variables ("dependencies are broken by realizing the random
variables", Section 5.2).

:func:`extract_affine` returns an :class:`AffineForm` or ``None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

import numpy as np

from repro.symbolic.expr import App, BatchConst, RVar, SymExpr

__all__ = ["AffineForm", "extract_affine"]


@dataclass(frozen=True)
class AffineForm:
    """Normalized affine form ``coeff * rv + const``.

    ``coeff`` may be a scalar (scalar variable), a matrix (vector-to-vector
    map), or a row vector (vector-to-scalar projection such as
    ``x[i]``). ``rv`` is the single random-variable node involved; a pure
    constant has ``rv is None`` and ``coeff == 0``.
    """

    rv: Optional[Any]  # the graph node, or None for a pure constant
    coeff: Any
    const: Any

    def is_constant(self) -> bool:
        return self.rv is None

    def is_identity(self) -> bool:
        """True when the form is exactly the variable itself."""
        if self.rv is None:
            return False
        if isinstance(self.coeff, np.ndarray):
            return (
                self.coeff.ndim == 2
                and self.coeff.shape[0] == self.coeff.shape[1]
                and np.array_equal(self.coeff, np.eye(self.coeff.shape[0]))
                and np.all(np.asarray(self.const) == 0.0)
            )
        return self.coeff == 1.0 and (
            np.all(np.asarray(self.const) == 0.0)
            if isinstance(self.const, np.ndarray)
            else self.const == 0.0
        )


def _combine_add(a: AffineForm, b: AffineForm, sign: float) -> Optional[AffineForm]:
    """Affine form of ``a + sign*b``, or None if two distinct variables meet."""
    if a.rv is not None and b.rv is not None:
        if a.rv is not b.rv:
            return None
        coeff = a.coeff + sign * b.coeff
        const = a.const + sign * b.const
        if np.all(np.asarray(coeff) == 0.0):
            return AffineForm(None, 0.0, const)
        return AffineForm(a.rv, coeff, const)
    if b.rv is not None:
        return AffineForm(b.rv, sign * b.coeff, a.const + sign * b.const)
    return AffineForm(a.rv, a.coeff, a.const + sign * b.const)


def _combine_mul(a: AffineForm, b: AffineForm) -> Optional[AffineForm]:
    """Affine form of ``a * b``; only valid when one side is constant."""
    if a.rv is not None and b.rv is not None:
        return None  # quadratic
    if a.rv is None:
        scale, form = a.const, b
    else:
        scale, form = b.const, a
    return AffineForm(form.rv, scale * form.coeff, scale * form.const)


def extract_affine(expr: Any) -> Optional[AffineForm]:
    """Extract the affine form of ``expr``, or None if it is not affine.

    Concrete values yield constant forms. Division by a constant, matrix
    application to a vector variable, and component extraction
    (``x[i]`` as a one-hot row projection) are all supported.
    """
    if isinstance(expr, RVar):
        return AffineForm(expr.node, 1.0, 0.0)
    if isinstance(expr, BatchConst):
        # A per-particle constant: no random variable involved, but the
        # constant part of the form is an array (particle-major).
        return AffineForm(None, 0.0, expr.values)
    if not isinstance(expr, SymExpr):
        return AffineForm(None, 0.0, expr)
    if not isinstance(expr, App):
        return None
    op, args = expr.op, expr.args
    if op in ("add", "sub"):
        left = extract_affine(args[0])
        right = extract_affine(args[1])
        if left is None or right is None:
            return None
        return _combine_add(left, right, 1.0 if op == "add" else -1.0)
    if op == "mul":
        left = extract_affine(args[0])
        right = extract_affine(args[1])
        if left is None or right is None:
            return None
        return _combine_mul(left, right)
    if op == "div":
        left = extract_affine(args[0])
        right = extract_affine(args[1])
        if left is None or right is None or right.rv is not None:
            return None
        return _combine_mul(left, AffineForm(None, 0.0, 1.0 / right.const))
    if op == "neg":
        inner = extract_affine(args[0])
        if inner is None:
            return None
        return AffineForm(inner.rv, -inner.coeff, -np.asarray(inner.const) * 1.0
                          if isinstance(inner.const, np.ndarray) else -inner.const)
    if op == "matvec":
        matrix, vector = args[0], args[1]
        if isinstance(matrix, SymExpr):
            return None  # symbolic matrix: not affine in a single variable
        inner = extract_affine(vector)
        if inner is None:
            return None
        matrix = np.asarray(matrix, dtype=float)
        if inner.rv is None:
            const = np.asarray(inner.const)
            if const.ndim == 2:
                # Particle-major batched constant (one row per particle):
                # apply the matrix rowwise with the row-stable kernel, so
                # sharded evaluation matches unsharded bit for bit.
                from repro.dists.mv_gaussian import batched_matvec

                return AffineForm(None, 0.0, batched_matvec(matrix, const))
            return AffineForm(None, 0.0, matrix @ const)
        coeff = matrix @ np.atleast_2d(inner.coeff) if np.ndim(inner.coeff) == 2 else (
            matrix * inner.coeff
        )
        if np.ndim(inner.const) == 2:
            # Particle-major batched constant: rowwise, as above.
            from repro.dists.mv_gaussian import batched_matvec

            const = batched_matvec(matrix, np.asarray(inner.const))
        elif np.ndim(inner.const) >= 1:
            const = matrix @ np.asarray(inner.const)
        else:
            const = matrix @ (np.zeros(matrix.shape[1]) + inner.const)
        return AffineForm(inner.rv, coeff, const)
    if op == "getitem":
        vector, index = args[0], args[1]
        if isinstance(index, SymExpr):
            return None
        inner = extract_affine(vector)
        if inner is None or inner.rv is None:
            return None
        # Represent x[i] as the one-hot row projection e_i^T applied to
        # the (possibly already transformed) vector form.
        if np.ndim(inner.coeff) == 2:
            row = np.asarray(inner.coeff)[index, :]
        elif np.ndim(inner.coeff) == 0 and inner.coeff == 1.0:
            dim = _node_dim(inner.rv)
            if dim is None:
                return None
            row = np.zeros(dim)
            row[index] = 1.0
        else:
            return None
        if np.ndim(inner.const) == 2:
            const = np.asarray(inner.const)[:, index]  # particle-major rows
        elif np.ndim(inner.const) >= 1:
            const = inner.const[index]
        else:
            const = inner.const
        return AffineForm(inner.rv, row, const)
    return None


def _node_dim(node: Any) -> Optional[int]:
    """Dimension of a vector-valued graph node, if it advertises one."""
    dim = getattr(node, "dim", None)
    if isinstance(dim, int) and dim > 0:
        return dim
    return None
