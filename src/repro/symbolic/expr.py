"""Symbolic expression terms for delayed sampling.

Under delayed sampling "any expression, probabilistic or deterministic,
can contribute to a symbolic term" (Section 5.2, Fig. 14): sampling does
not return a concrete value but a *reference to a random variable* in the
delayed-sampling graph, and arithmetic on such references builds symbolic
application nodes ``app(op, e)``.

Expressions here are plain immutable trees. Arithmetic operators are
overloaded so model code written for concrete floats (``mean = prev + 1``)
works unchanged when ``prev`` is symbolic. Constant folding keeps trees
small: combining two concrete values never allocates a node.

The three consumers of these trees are:

* the delayed-sampling contexts, which extract *affine forms*
  (:mod:`repro.symbolic.affine`) to detect conjugacy at ``assume`` time,
* ``value`` (forced realization), which samples every referenced random
  variable and then evaluates the tree numerically,
* ``distribution`` (Section 5.3), which lifts a tree to a closed-form
  distribution without realizing anything when the tree is affine in a
  single Gaussian variable.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Tuple

import numpy as np

from repro.errors import SymbolicError

__all__ = [
    "SymExpr",
    "RVar",
    "BatchConst",
    "App",
    "is_symbolic",
    "free_rvars",
    "eval_expr",
    "map_structure",
    "structure_rvars",
]


class SymExpr:
    """Base class of symbolic expression nodes.

    Supports the numeric operator protocol so symbolic values compose
    transparently with concrete ones inside model code.
    """

    __slots__ = ()

    # -- operator overloading ------------------------------------------------
    def __add__(self, other):
        return app("add", self, other)

    def __radd__(self, other):
        return app("add", other, self)

    def __sub__(self, other):
        return app("sub", self, other)

    def __rsub__(self, other):
        return app("sub", other, self)

    def __mul__(self, other):
        return app("mul", self, other)

    def __rmul__(self, other):
        return app("mul", other, self)

    def __truediv__(self, other):
        return app("div", self, other)

    def __rtruediv__(self, other):
        return app("div", other, self)

    def __neg__(self):
        return app("neg", self)

    def __matmul__(self, other):
        return app("matvec", self, other)

    def __rmatmul__(self, other):
        return app("matvec", other, self)

    def __getitem__(self, index):
        return app("getitem", self, index)

    def __bool__(self):
        raise SymbolicError(
            "cannot branch on a symbolic value; realize it first with ctx.value(...)"
        )


class RVar(SymExpr):
    """A reference to a random-variable node in a delayed-sampling graph.

    The wrapped ``node`` is opaque to this module; the delayed-sampling
    package gives it meaning (state, marginal, pointers).
    """

    __slots__ = ("node",)

    def __init__(self, node: Any):
        self.node = node

    def __repr__(self) -> str:
        return f"RVar({self.node!r})"


class BatchConst(SymExpr):
    """A concrete *per-particle* constant inside a symbolic expression.

    The array-native delayed-sampling runtime threads whole-population
    arrays through model code written for scalars: after a forced
    realization, "the previous state" is one value per particle, i.e.
    an array with the particle index as leading axis. Wrapping it keeps
    ``is_symbolic`` true, so lifted constructors still produce
    :class:`~repro.lang.lifted.SymDist` terms and the batched ``assume``
    can turn ``gaussian(BatchConst(x), v)`` into a marginalized root
    with a per-particle mean — instead of a scalar ``Gaussian``
    constructor choking on an array parameter.

    In affine analysis it behaves as a constant (no random variable),
    and evaluation simply unwraps the array.
    """

    __slots__ = ("values",)

    def __init__(self, values: Any):
        self.values = np.asarray(values)

    def __repr__(self) -> str:
        return f"BatchConst(shape={self.values.shape})"


class App(SymExpr):
    """Application of a primitive operator to symbolic/concrete arguments."""

    __slots__ = ("op", "args")

    def __init__(self, op: str, args: Tuple[Any, ...]):
        self.op = op
        self.args = args

    def __repr__(self) -> str:
        return f"App({self.op!r}, {self.args!r})"


# Primitive operator implementations used when a tree is evaluated with
# concrete values. ``matvec`` is matrix-vector application; ``getitem``
# extracts one component of a vector value.
_OP_IMPLS: dict = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "neg": lambda a: -a,
    "matvec": lambda m, v: np.asarray(m) @ np.asarray(v),
    "getitem": lambda v, i: v[i],
    "exp": lambda a: float(np.exp(a)),
    "log": lambda a: float(np.log(a)),
    "abs": lambda a: abs(a),
}


def register_op(name: str, impl: Callable) -> None:
    """Register a new primitive operator usable in symbolic trees."""
    _OP_IMPLS[name] = impl


def is_symbolic(value: Any) -> bool:
    """True when ``value`` is (or structurally contains) a symbolic expression."""
    if isinstance(value, SymExpr):
        return True
    if isinstance(value, (tuple, list)):
        return any(is_symbolic(v) for v in value)
    if isinstance(value, dict):
        return any(is_symbolic(v) for v in value.values())
    return False


def app(op: str, *args: Any) -> Any:
    """Build ``App(op, args)`` with constant folding.

    If no argument is symbolic the operator is applied immediately and a
    concrete value is returned, so symbolic nodes only exist where a
    random variable is actually involved.
    """
    if any(isinstance(a, SymExpr) for a in args):
        return App(op, tuple(args))
    impl = _OP_IMPLS.get(op)
    if impl is None:
        raise SymbolicError(f"unknown primitive operator {op!r}")
    return impl(*args)


def free_rvars(value: Any) -> List[RVar]:
    """All :class:`RVar` leaves in ``value`` (deduplicated by node, in order)."""
    seen: List[RVar] = []
    seen_ids = set()

    def walk(v: Any) -> None:
        if isinstance(v, RVar):
            if id(v.node) not in seen_ids:
                seen_ids.add(id(v.node))
                seen.append(v)
        elif isinstance(v, App):
            for a in v.args:
                walk(a)
        elif isinstance(v, (tuple, list)):
            for a in v:
                walk(a)
        elif isinstance(v, dict):
            for a in v.values():
                walk(a)

    walk(value)
    return seen


def eval_expr(value: Any, lookup: Callable[[Any], Any]) -> Any:
    """Evaluate a symbolic tree to a concrete value.

    ``lookup`` maps a graph node (the payload of an :class:`RVar`) to its
    concrete value; it is typically ``graph.value`` which realizes the
    variable on demand.
    """
    if isinstance(value, RVar):
        return lookup(value.node)
    if isinstance(value, BatchConst):
        return value.values
    if isinstance(value, App):
        impl = _OP_IMPLS.get(value.op)
        if impl is None:
            raise SymbolicError(f"unknown primitive operator {value.op!r}")
        return impl(*(eval_expr(a, lookup) for a in value.args))
    if isinstance(value, tuple):
        return tuple(eval_expr(v, lookup) for v in value)
    if isinstance(value, list):
        return [eval_expr(v, lookup) for v in value]
    if isinstance(value, dict):
        return {k: eval_expr(v, lookup) for k, v in value.items()}
    return value


def map_structure(value: Any, fn: Callable[[SymExpr], Any]) -> Any:
    """Rebuild a nested container, applying ``fn`` to every symbolic leaf.

    Containers (tuples, lists, dicts) are rebuilt; symbolic expressions
    (both :class:`RVar` and :class:`App`) are passed to ``fn`` whole. Used
    by the inference engines to force, clone, or lift the symbolic parts
    of a particle's state.
    """
    if isinstance(value, SymExpr):
        return fn(value)
    if isinstance(value, tuple):
        return tuple(map_structure(v, fn) for v in value)
    if isinstance(value, list):
        return [map_structure(v, fn) for v in value]
    if isinstance(value, dict):
        return {k: map_structure(v, fn) for k, v in value.items()}
    return value


def structure_rvars(value: Any) -> Iterator[Any]:
    """Yield the graph nodes referenced anywhere inside ``value``."""
    for rv in free_rvars(value):
        yield rv.node
