"""Symbolic expression terms and affine analysis for delayed sampling."""

from repro.symbolic.affine import AffineForm, extract_affine
from repro.symbolic.expr import (
    App,
    BatchConst,
    RVar,
    SymExpr,
    app,
    eval_expr,
    free_rvars,
    is_symbolic,
    map_structure,
    register_op,
    structure_rvars,
)

__all__ = [
    "SymExpr",
    "RVar",
    "BatchConst",
    "App",
    "app",
    "is_symbolic",
    "free_rvars",
    "eval_expr",
    "map_structure",
    "register_op",
    "structure_rvars",
    "AffineForm",
    "extract_affine",
]
