"""repro.obs — runtime telemetry: metrics, step-phase tracing, exports.

The paper's headline claims are performance properties (bounded
latency, constant memory, streaming inference); this package lets the
runtime demonstrate them from the *inside*:

* :mod:`repro.obs.registry` — counters, gauges, fixed-bucket histograms
  in a :class:`MetricsRegistry` (process-global default), plus the
  always-on :func:`count_event` used by the runtime's degradation
  paths (scalar-fragment fallback, NaN-weight zeroing, session
  eviction).
* :mod:`repro.obs.spans` — step-phase span tracing threaded through the
  engines, executors, and the stream server. Off by default: disabled
  instrumentation is one attribute check (``TELEMETRY.enabled``) with
  no allocation. Worker-resident shards ship their spans back
  piggybacked on the per-step reply.
* :mod:`repro.obs.exporters` — JSON snapshot documents and the
  Prometheus text exposition format (with a round-trip parser).

Typical use::

    from repro.obs import enable_telemetry, metrics_snapshot

    enable_telemetry()
    ...                       # run engines / StreamServer as usual
    print(metrics_snapshot()["histograms"])
"""

from repro.obs.exporters import (
    METRICS_JSON_SCHEMA,
    parse_prometheus,
    snapshot_document,
    to_prometheus,
    write_metrics_json,
)
from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    count_event,
    default_registry,
    set_default_registry,
)
from repro.obs.spans import (
    NULL_RECORDER,
    NULL_TIMER,
    TELEMETRY,
    NullRecorder,
    Span,
    SpanRecorder,
    StepTimer,
    Telemetry,
    disable_telemetry,
    enable_telemetry,
    telemetry,
)

__all__ = [
    # registry
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "count_event",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "metrics_snapshot",
    # spans
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "StepTimer",
    "NULL_TIMER",
    "Telemetry",
    "TELEMETRY",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry",
    # exporters
    "snapshot_document",
    "write_metrics_json",
    "to_prometheus",
    "parse_prometheus",
    "METRICS_JSON_SCHEMA",
]


def metrics_snapshot(registry=None):
    """Snapshot of the (default) registry: kind -> full name -> value."""
    registry = registry if registry is not None else default_registry()
    return registry.snapshot()
