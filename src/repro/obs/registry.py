"""Metrics registry: counters, gauges, and fixed-bucket histograms.

The paper's claims are *performance properties* — bounded latency,
constant memory — and a long-running deployment must be able to observe
them from the inside, not only through a bench harness's stopwatch.
This module is the storage layer of :mod:`repro.obs`: three metric
primitives with Prometheus-compatible semantics, collected in a
:class:`MetricsRegistry` with one process-global default instance.

Design constraints, in order:

* **Negligible hot-path cost.** A metric object is a ``__slots__``
  instance whose update is one float add; a :class:`Histogram` update is
  one :func:`bisect.bisect_left` plus two adds. Registry lookups are a
  single dict get keyed by ``(name, labels)``; call sites that run per
  step cache the metric object instead (see
  :class:`repro.obs.spans.SpanRecorder`).
* **Derivable quantiles.** Histograms use *fixed* bucket upper bounds,
  so p50/p95/p99 are derivable from the bucket counts at read time
  (:meth:`Histogram.quantile`) and two snapshots can be subtracted —
  the property Prometheus-style monitoring relies on.
* **Plain-data export.** :meth:`MetricsRegistry.snapshot` returns a
  JSON-ready dict; the Prometheus text rendering lives in
  :mod:`repro.obs.exporters`.

Degradation-path **event counters** (scalar-fragment fallback,
NaN-weight zeroing, session eviction) go through :func:`count_event`
and are *always on*: the events are rare, a counter bump is one dict
get plus one add, and their entire point is to be visible in
deployments that never enabled step tracing.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
    "count_event",
    "DEFAULT_LATENCY_BUCKETS_MS",
]

#: default histogram bucket upper bounds for latency metrics, in
#: milliseconds: roughly logarithmic from 10 microseconds to 10 seconds,
#: dense enough that p99 interpolation stays within ~2x of the truth at
#: every scale the engines operate on.
DEFAULT_LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0,
    10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 10000.0,
)

#: labels sorted and frozen: the dict key of one metric instance.
LabelSet = Tuple[Tuple[str, str], ...]


def _labelset(labels: Optional[Mapping[str, Any]]) -> LabelSet:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def format_labels(labels: LabelSet) -> str:
    """Render a label set as ``{k="v",...}`` (empty string when none)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return "{" + inner + "}"


class Metric:
    """Shared identity of every metric: name, labels, help text."""

    __slots__ = ("name", "labels", "help")

    kind = "untyped"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def full_name(self) -> str:
        """``name{labels}`` — the key used in snapshots and exports."""
        return self.name + format_labels(self.labels)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.full_name!r})"


class Counter(Metric):
    """A monotonically increasing count (events, steps, particles)."""

    __slots__ = ("_value",)

    kind = "counter"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class Gauge(Metric):
    """A value that goes up and down (sessions active, queue depth)."""

    __slots__ = ("_value",)

    kind = "gauge"

    def __init__(self, name: str, labels: LabelSet = (), help: str = ""):
        super().__init__(name, labels, help)
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self._value -= amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot_value(self) -> float:
        return self._value


class Histogram(Metric):
    """Fixed-bucket histogram with derivable quantiles.

    ``buckets`` are the finite upper bounds, in increasing order; an
    implicit ``+inf`` bucket catches the overflow. ``observe`` is one
    binary search plus two adds, so it is safe on per-step hot paths.
    Quantiles are estimated by linear interpolation inside the bucket
    that contains the requested rank — exactly what a Prometheus
    ``histogram_quantile`` does — so p50/p95/p99 come from the bucket
    counts alone and remain meaningful after snapshot subtraction.
    """

    __slots__ = ("buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelSet = (),
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ):
        super().__init__(name, labels, help)
        bounds = tuple(float(b) for b in buckets)
        if not bounds or any(
            b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])
        ):
            raise ValueError("histogram buckets must be strictly increasing")
        self.buckets = bounds
        #: per-bucket (non-cumulative) counts; index len(buckets) = +inf.
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    def cumulative_counts(self) -> List[int]:
        """Prometheus-style cumulative per-bucket counts (incl. +inf)."""
        total = 0
        out = []
        for c in self.counts:
            total += c
            out.append(total)
        return out

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from the buckets.

        Linear interpolation within the containing bucket; the lower
        edge of the first bucket is 0 (latencies are non-negative), and
        a rank landing in the +inf bucket reports the last finite bound
        — the honest answer fixed buckets can give.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q!r}")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            if c == 0:
                continue
            if seen + c >= rank:
                if i >= len(self.buckets):
                    return self.buckets[-1]
                lower = 0.0 if i == 0 else self.buckets[i - 1]
                upper = self.buckets[i]
                fraction = (rank - seen) / c
                return lower + fraction * (upper - lower)
            seen += c
        return self.buckets[-1]

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")

    def snapshot_value(self) -> Dict[str, Any]:
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    ``counter`` / ``gauge`` / ``histogram`` return the existing metric
    for ``(name, labels)`` or create it; asking for the same name with a
    different metric *type* is an error (it would corrupt the export).
    Creation is guarded by a lock so threads sharing the process-global
    registry cannot race; updates on the returned objects are plain
    attribute arithmetic — unsynchronized, matching the engines'
    threading model where each step phase runs in one thread at a time.
    """

    def __init__(self):
        self._metrics: Dict[Tuple[str, LabelSet], Metric] = {}
        self._lock = threading.Lock()

    def _get_or_create(self, cls, name: str, labels, help: str, **kwargs):
        key = (name, _labelset(labels))
        metric = self._metrics.get(key)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(key)
                if metric is None:
                    metric = cls(name, key[1], help, **kwargs)
                    self._metrics[key] = metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as {metric.kind}, "
                f"requested {cls.kind}"
            )
        return metric

    def counter(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        help: str = "",
    ) -> Counter:
        return self._get_or_create(Counter, name, labels, help)

    def gauge(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        help: str = "",
    ) -> Gauge:
        return self._get_or_create(Gauge, name, labels, help)

    def histogram(
        self,
        name: str,
        labels: Optional[Mapping[str, Any]] = None,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, help, buckets=buckets
        )

    def metrics(self) -> Iterable[Metric]:
        """Every registered metric, in stable (name, labels) order."""
        return [self._metrics[key] for key in sorted(self._metrics)]

    def get(self, name: str, labels: Optional[Mapping[str, Any]] = None):
        """The registered metric for ``(name, labels)``, or None."""
        return self._metrics.get((name, _labelset(labels)))

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """JSON-ready view: kind -> full name -> value.

        Counters and gauges map to their float value; histograms to a
        ``{"buckets", "counts", "sum", "count"}`` dict. The layout is
        stable across runs (sorted keys), so snapshots diff cleanly.
        """
        out: Dict[str, Dict[str, Any]] = {
            "counters": {}, "gauges": {}, "histograms": {},
        }
        for metric in self.metrics():
            out[metric.kind + "s"][metric.full_name] = metric.snapshot_value()
        return out

    def reset(self) -> None:
        """Drop every registered metric (tests, start of a bench run)."""
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    def __repr__(self) -> str:
        return f"MetricsRegistry(metrics={len(self._metrics)})"


#: the process-global registry every default-configured component uses.
_DEFAULT_REGISTRY = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-global :class:`MetricsRegistry`."""
    return _DEFAULT_REGISTRY


def set_default_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Replace the process-global registry; returns the previous one."""
    global _DEFAULT_REGISTRY
    previous = _DEFAULT_REGISTRY
    _DEFAULT_REGISTRY = registry
    return previous


def count_event(
    name: str, labels: Optional[Mapping[str, Any]] = None, amount: float = 1.0
) -> None:
    """Increment an always-on event counter in the default registry.

    The runtime's degradation paths (scalar-fragment fallback, NaN
    weight zeroing, session eviction on failure) call this next to
    their one-time ``RuntimeWarning``: the warning tells an interactive
    user *once*, the counter tells a long-running deployment *how
    often*. Not gated by the tracing switch — these events are rare and
    the counter bump is two dict operations.
    """
    _DEFAULT_REGISTRY.counter(name, labels).inc(amount)
