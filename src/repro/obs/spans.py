"""Step-phase span tracing with a disabled fast path.

One inference step is a fixed pipeline — model eval, weight merge,
resample barrier (exchange-plan build + particle migration for
worker-resident populations) — and this module times those phases as
*spans*: named durations recorded into per-phase histograms of the
metrics registry plus a small ring of recent raw spans for inspection.

The cost contract:

* **Disabled** (the default), instrumentation is a single attribute
  check with no allocation: call sites do
  ``timer = TELEMETRY.step_timer()`` and get the shared
  :data:`NULL_TIMER` singleton whose ``mark`` is a no-op, or they test
  ``TELEMETRY.enabled`` directly. Nothing is created per step.
* **Enabled**, a phase mark is two ``perf_counter`` calls, one cached
  dict lookup, and one histogram observe — microseconds against step
  times measured in milliseconds (the measured overhead table lives in
  ``EXPERIMENTS.md``).

Worker-resident execution (``processes-persistent:N``) cannot record
into the coordinator's registry directly: workers accumulate
``(phase, duration_ms)`` pairs in a per-worker buffer that ships back
piggybacked on the existing per-step reply (through the
:class:`~repro.exec.shm.ShmRing` or pipe like every other reply field),
and the engine folds them into the registry at the merge point — see
:meth:`SpanRecorder.record_shipped`.

Enabling is process-wide (:func:`enable_telemetry` /
:func:`disable_telemetry`) because the engines, executors, and servers
being traced share one process; the :func:`telemetry` context manager
scopes it for tests and benchmarks.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from time import perf_counter
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.obs.registry import (
    DEFAULT_LATENCY_BUCKETS_MS,
    Histogram,
    MetricsRegistry,
    default_registry,
)

__all__ = [
    "Span",
    "SpanRecorder",
    "NullRecorder",
    "NULL_RECORDER",
    "StepTimer",
    "NULL_TIMER",
    "Telemetry",
    "TELEMETRY",
    "enable_telemetry",
    "disable_telemetry",
    "telemetry",
    "PHASE_HISTOGRAM",
]

#: registry histogram fed by every span: one time series per phase label.
PHASE_HISTOGRAM = "repro_step_phase_ms"


class Span(tuple):
    """One recorded phase duration: ``(phase, duration_ms)``.

    A tuple subclass rather than a dataclass so worker-shipped span
    buffers pickle as plain tuples with no class baggage.
    """

    __slots__ = ()

    def __new__(cls, phase: str, duration_ms: float) -> "Span":
        return tuple.__new__(cls, (phase, duration_ms))

    @property
    def phase(self) -> str:
        return self[0]

    @property
    def duration_ms(self) -> float:
        return self[1]


class SpanRecorder:
    """Aggregates spans into per-phase registry histograms.

    The recorder caches the :class:`~repro.obs.registry.Histogram` per
    phase name, so the steady-state cost of a span is one dict get and
    one observe. ``recent`` keeps the last ``keep`` raw spans (a bounded
    deque) for debugging and tests; the histograms are the durable
    record.
    """

    enabled = True

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        keep: int = 256,
        buckets=DEFAULT_LATENCY_BUCKETS_MS,
    ):
        self.registry = registry if registry is not None else default_registry()
        self.buckets = buckets
        self.recent: Deque[Span] = deque(maxlen=keep)
        self._histograms: Dict[str, Histogram] = {}

    def _histogram(self, phase: str) -> Histogram:
        hist = self._histograms.get(phase)
        if hist is None:
            hist = self.registry.histogram(
                PHASE_HISTOGRAM,
                labels={"phase": phase},
                help="step-pipeline phase duration",
                buckets=self.buckets,
            )
            self._histograms[phase] = hist
        return hist

    def record(self, phase: str, duration_ms: float) -> None:
        """Record one completed phase span."""
        self._histogram(phase).observe(duration_ms)
        self.recent.append(Span(phase, duration_ms))

    def record_shipped(self, spans: Iterable[Tuple[str, float]]) -> None:
        """Fold spans shipped back from a worker process into this registry."""
        for phase, duration_ms in spans:
            self.record(phase, duration_ms)

    def phases(self) -> List[str]:
        """Phase names seen so far, sorted."""
        return sorted(self._histograms)


class NullRecorder:
    """The disabled recorder: every operation is a no-op.

    ``enabled`` is False, so call sites that need more than a plain
    span — e.g. a conditional buffer allocation — can gate on one
    attribute check; call sites that only record can call
    unconditionally and still pay nothing but the method dispatch.
    """

    enabled = False

    def record(self, phase: str, duration_ms: float) -> None:
        pass

    def record_shipped(self, spans) -> None:
        pass

    def phases(self) -> List[str]:
        return []


#: the shared disabled recorder; never holds state, safe to share.
NULL_RECORDER = NullRecorder()


class StepTimer:
    """Sequential phase segmentation of one step.

    The step pipelines are straight-line code, so phases are marked by
    *boundaries*: ``mark("model_eval")`` records the time since the
    previous mark (or construction) under that phase and restarts the
    clock. ``total`` records the whole span since construction — the
    end-to-end step latency.
    """

    __slots__ = ("recorder", "_start", "_last")

    def __init__(self, recorder: SpanRecorder):
        self.recorder = recorder
        self._start = self._last = perf_counter()

    def mark(self, phase: str) -> None:
        now = perf_counter()
        self.recorder.record(phase, (now - self._last) * 1e3)
        self._last = now

    def total(self, phase: str) -> None:
        self.recorder.record(phase, (perf_counter() - self._start) * 1e3)


class _NullStepTimer:
    """The disabled timer: shared singleton, no clock reads."""

    __slots__ = ()

    def mark(self, phase: str) -> None:
        pass

    def total(self, phase: str) -> None:
        pass


NULL_TIMER = _NullStepTimer()


class Telemetry:
    """Process-wide telemetry switch: one attribute check on hot paths.

    ``TELEMETRY.enabled`` is the only thing instrumented code reads per
    step when tracing is off. The object identity is stable (module
    singleton), so ``from repro.obs import TELEMETRY`` imports stay
    valid across enable/disable — only the fields mutate.
    """

    __slots__ = ("enabled", "recorder")

    def __init__(self):
        self.enabled = False
        self.recorder = NULL_RECORDER

    def step_timer(self):
        """A :class:`StepTimer` when enabled, the shared no-op otherwise."""
        if self.enabled:
            return StepTimer(self.recorder)
        return NULL_TIMER


#: the singleton every instrumentation site imports.
TELEMETRY = Telemetry()


def enable_telemetry(
    registry: Optional[MetricsRegistry] = None, keep: int = 256
) -> SpanRecorder:
    """Turn on step-phase tracing; returns the live :class:`SpanRecorder`.

    ``registry`` defaults to the process-global one
    (:func:`repro.obs.registry.default_registry`). Worker processes of a
    persistent executor do *not* need this call — their spans are
    collected per step command and shipped back to the coordinator,
    which records them here.
    """
    recorder = SpanRecorder(registry, keep=keep)
    TELEMETRY.recorder = recorder
    TELEMETRY.enabled = True
    return recorder


def disable_telemetry() -> None:
    """Turn off step-phase tracing (the default state)."""
    TELEMETRY.enabled = False
    TELEMETRY.recorder = NULL_RECORDER


@contextmanager
def telemetry(registry: Optional[MetricsRegistry] = None, keep: int = 256):
    """Scoped tracing: enabled inside the block, prior state restored after.

    ::

        with telemetry() as recorder:
            run_stream(engine, data)
        print(recorder.phases())
    """
    previous = (TELEMETRY.enabled, TELEMETRY.recorder)
    recorder = enable_telemetry(registry, keep=keep)
    try:
        yield recorder
    finally:
        TELEMETRY.enabled, TELEMETRY.recorder = previous
