"""Snapshot exporters: JSON documents and Prometheus text format.

Two read paths out of a :class:`~repro.obs.registry.MetricsRegistry`:

* :func:`snapshot_document` / :func:`write_metrics_json` — a JSON
  document (schema-tagged, host-stamped like the bench trajectory
  files) that CI archives next to ``BENCH_*.json`` so a build's
  telemetry is inspectable after the fact.
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` comments, cumulative ``_bucket{le=...}``
  series with the ``+Inf`` bucket, ``_sum`` / ``_count``), so a
  scraping deployment needs no translation layer.

:func:`parse_prometheus` is the inverse reader for the exposition
format — enough of a parser to round-trip everything this module emits,
used by the tests to prove the exporter's output is well-formed and
lossless, and handy for ad-hoc diffing of two scrapes.
"""

from __future__ import annotations

import json
import platform
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    format_labels,
)

__all__ = [
    "snapshot_document",
    "write_metrics_json",
    "to_prometheus",
    "parse_prometheus",
    "METRICS_JSON_SCHEMA",
]

#: schema tag stamped into every metrics snapshot JSON document.
METRICS_JSON_SCHEMA = "repro-metrics/1"


def snapshot_document(
    registry: Optional[MetricsRegistry] = None, meta: Optional[Dict] = None
) -> Dict:
    """A JSON-ready snapshot document of ``registry`` (default: global)."""
    registry = registry if registry is not None else default_registry()
    return {
        "schema": METRICS_JSON_SCHEMA,
        "host": {
            "platform": platform.platform(),
            "python": platform.python_version(),
        },
        "meta": dict(meta or {}),
        "metrics": registry.snapshot(),
    }


def write_metrics_json(
    path, registry: Optional[MetricsRegistry] = None, meta: Optional[Dict] = None
) -> None:
    """Write a registry snapshot as one JSON document (CI artifact unit)."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            snapshot_document(registry, meta), handle, indent=2, sort_keys=True
        )
        handle.write("\n")


def _format_value(value: float) -> str:
    """Prometheus number rendering: integers without a trailing ``.0``."""
    as_float = float(value)
    if as_float == int(as_float) and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _merge_labels(labels, extra: Dict[str, str]) -> str:
    merged = dict(labels)
    merged.update(extra)
    return format_labels(tuple(sorted(merged.items())))


def to_prometheus(registry: Optional[MetricsRegistry] = None) -> str:
    """Render ``registry`` in the Prometheus text exposition format.

    Metrics sharing a name (label variants) are grouped under one
    ``# HELP`` / ``# TYPE`` header, as the format requires; histograms
    expand to cumulative ``_bucket`` series ending in ``le="+Inf"``,
    plus ``_sum`` and ``_count``.
    """
    registry = registry if registry is not None else default_registry()
    lines: List[str] = []
    seen_headers = set()
    for metric in registry.metrics():
        if metric.name not in seen_headers:
            seen_headers.add(metric.name)
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, (Counter, Gauge)):
            lines.append(
                f"{metric.name}{format_labels(metric.labels)} "
                f"{_format_value(metric.value)}"
            )
        elif isinstance(metric, Histogram):
            cumulative = metric.cumulative_counts()
            for bound, count in zip(metric.buckets, cumulative):
                label_text = _merge_labels(
                    metric.labels, {"le": _format_value(bound)}
                )
                lines.append(f"{metric.name}_bucket{label_text} {count}")
            label_text = _merge_labels(metric.labels, {"le": "+Inf"})
            lines.append(f"{metric.name}_bucket{label_text} {cumulative[-1]}")
            suffix_labels = format_labels(metric.labels)
            lines.append(
                f"{metric.name}_sum{suffix_labels} {_format_value(metric.sum)}"
            )
            lines.append(f"{metric.name}_count{suffix_labels} {metric.count}")
    return "\n".join(lines) + "\n"


def _parse_label_block(text: str) -> Tuple[Tuple[str, str], ...]:
    """Parse ``k="v",k2="v2"`` into a sorted label tuple."""
    labels = []
    i = 0
    while i < len(text):
        eq = text.index("=", i)
        key = text[i:eq].strip().lstrip(",").strip()
        if text[eq + 1] != '"':
            raise ValueError(f"unquoted label value in {text!r}")
        end = text.index('"', eq + 2)
        labels.append((key, text[eq + 2 : end]))
        i = end + 1
    return tuple(sorted(labels))


def parse_prometheus(text: str) -> Dict[str, Dict]:
    """Parse the text exposition format back into plain data.

    Returns ``name -> {"type", "help", "samples"}`` where ``samples``
    maps a rendered label string (sorted keys, ``""`` when unlabelled)
    to the float sample value. Histogram series parse as their expanded
    ``_bucket`` / ``_sum`` / ``_count`` sample names under the base
    name's entry — the same information the exporter started from, which
    is what makes the round-trip test meaningful.
    """
    families: Dict[str, Dict] = {}

    def family(name: str) -> Dict:
        return families.setdefault(
            name, {"type": "untyped", "help": "", "samples": {}}
        )

    for raw_line in text.splitlines():
        line = raw_line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            _, _, rest = line.partition("# HELP ")
            name, _, help_text = rest.partition(" ")
            family(name)["help"] = help_text
            continue
        if line.startswith("# TYPE "):
            _, _, rest = line.partition("# TYPE ")
            name, _, kind = rest.partition(" ")
            family(name)["type"] = kind.strip()
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[: line.index("{")]
            block = line[line.index("{") + 1 : line.rindex("}")]
            labels = _parse_label_block(block)
            value_text = line[line.rindex("}") + 1 :].strip()
        else:
            name, _, value_text = line.partition(" ")
            labels = ()
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in families:
                base = name[: -len(suffix)]
                break
        label_text = format_labels(labels)
        family(base)["samples"][name + label_text] = float(value_text)
    return families
