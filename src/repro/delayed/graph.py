"""Delayed-sampling graphs.

:class:`BaseGraph` implements the algorithmic core shared by the
original delayed-sampling structure and the pointer-minimal streaming
variant: ``assume``, ``graft``/``prune`` (the M-path discipline),
``marginalize``, ``realize``, forced ``value``, and ``observe``.

:class:`DelayedGraph` is the original structure of Murray et al. (2018):
every edge is bidirectional (children keep a pointer to their parent and
parents to their children) and edges are only removed when a node is
*realized*. Conditioning a marginalized parent on a realized child
happens eagerly at realization time. The consequence highlighted by the
paper (Fig. 3, Fig. 4): a chain of marginalized nodes — the state
trajectory of an HMM — is never detached, so memory grows linearly with
the number of steps even after the program has dropped every reference
to the old nodes.

The streaming, pointer-minimal variant lives in
:mod:`repro.delayed.streaming`.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Set

import numpy as np

from repro.delayed.conjugacy import ConditionalDist
from repro.delayed.node import DSNode, NodeState, family_of_dist
from repro.dists import Delta, Distribution
from repro.errors import GraphError

__all__ = ["BaseGraph", "DelayedGraph", "reachable_nodes", "graph_memory_words"]


class BaseGraph:
    """Shared delayed-sampling machinery.

    Subclasses fix the pointer policy through four hooks:
    :meth:`_on_assume_edge`, :meth:`_on_marginalize_edge`,
    :meth:`_on_realize`, and :meth:`posterior_marginal`.
    """

    #: True for the pointer-minimal streaming implementation.
    pointer_minimal = False

    def __init__(self, rng: Optional[np.random.Generator] = None):
        self.rng = rng if rng is not None else np.random.default_rng()
        # Statistics (exposed for tests and the evaluation harness).
        self.n_assumed = 0
        self.n_realized = 0
        self.n_marginalized = 0

    # ------------------------------------------------------------------
    # assume
    # ------------------------------------------------------------------
    def assume_root(self, marginal: Distribution, name: str = "") -> DSNode:
        """Add a parentless random variable with the given marginal.

        Root nodes "start in the marginalized state" (Section 5.2).
        """
        self.n_assumed += 1
        return DSNode(
            NodeState.MARGINALIZED,
            family_of_dist(marginal),
            marginal=marginal,
            name=name,
        )

    def assume_conditional(
        self, cdistr: ConditionalDist, parent: DSNode, name: str = ""
    ) -> DSNode:
        """Add a random variable conditionally dependent on ``parent``.

        If the parent is already realized the conditional collapses to a
        concrete distribution and the new node is a marginalized root.
        """
        self.n_assumed += 1
        if parent.state is NodeState.REALIZED:
            return DSNode(
                NodeState.MARGINALIZED,
                cdistr.child_family,
                marginal=cdistr.at_parent_value(parent.value),
                name=name,
            )
        if parent.family != cdistr.parent_family:
            raise GraphError(
                f"conditional expects a {cdistr.parent_family} parent, "
                f"node {parent!r} has family {parent.family}"
            )
        node = DSNode(
            NodeState.INITIALIZED,
            cdistr.child_family,
            parent=parent,
            cdistr=cdistr,
            name=name,
        )
        self._on_assume_edge(parent, node)
        return node

    # ------------------------------------------------------------------
    # the M-path discipline
    # ------------------------------------------------------------------
    def graft(self, node: DSNode) -> None:
        """Make ``node`` the terminal node of a marginalized path.

        After grafting, ``node`` is marginalized and has no marginalized
        child, so it can be realized (sampled or observed).
        """
        if node.state is NodeState.REALIZED:
            raise GraphError("cannot graft a realized node")
        if node.state is NodeState.MARGINALIZED:
            child = self._live_marginal_child(node)
            if child is not None:
                self.prune(child)
            node.marginal_child = None
            return
        # Initialized: graft ancestors first, then marginalize this node.
        # The ancestor chain is walked iteratively so long initialized
        # chains (e.g. the paper's `walk` pathology) cannot overflow the
        # Python stack.
        chain: List[DSNode] = []
        cursor: Optional[DSNode] = node
        while cursor is not None and cursor.state is NodeState.INITIALIZED:
            chain.append(cursor)
            cursor = cursor.parent
        if cursor is not None and cursor.state is not NodeState.REALIZED:
            self.graft(cursor)  # marginalized ancestor: prune its M-child
        for link in reversed(chain):
            self.marginalize(link)

    def prune(self, node: DSNode) -> None:
        """Realize (by sampling) a whole marginalized sub-path below ``node``."""
        if node.state is not NodeState.MARGINALIZED:
            raise GraphError("prune expects a marginalized node")
        # Collect the marginalized chain below `node`, then realize from
        # the deepest node back up (each realization may condition its
        # parent, so order matters).
        chain: List[DSNode] = [node]
        cursor = self._live_marginal_child(node)
        while cursor is not None:
            chain.append(cursor)
            cursor = self._live_marginal_child(cursor)
        for link in reversed(chain):
            marginal = self.posterior_marginal(link)
            self.realize(link, marginal.sample(self.rng))

    def marginalize(self, node: DSNode) -> None:
        """Compute the marginal of an initialized node from its parent."""
        if node.state is not NodeState.INITIALIZED:
            raise GraphError("marginalize expects an initialized node")
        parent = node.parent
        if parent is None:
            raise GraphError("initialized node has no parent")
        self.n_marginalized += 1
        if parent.state is NodeState.REALIZED:
            # The parent was realized while this node was initialized:
            # the conditional collapses and the node becomes a root.
            node.marginal = node.cdistr.at_parent_value(parent.value)
            node.state = NodeState.MARGINALIZED
            node.parent = None
            return
        if parent.state is not NodeState.MARGINALIZED:
            raise GraphError("parent of a marginalized node must be marginalized")
        live_child = self._live_marginal_child(parent)
        if live_child is not None and live_child is not node:
            raise GraphError(
                "parent already has a marginalized child; graft should have pruned it"
            )
        node.marginal = node.cdistr.marginalize(self.posterior_marginal(parent))
        node.state = NodeState.MARGINALIZED
        parent.marginal_child = node
        self._on_marginalize_edge(parent, node)

    def realize(self, node: DSNode, value: Any) -> None:
        """Assign a concrete value to a marginalized node."""
        if node.state is not NodeState.MARGINALIZED:
            raise GraphError("realize expects a marginalized node (graft first)")
        live_child = self._live_marginal_child(node)
        if live_child is not None:
            raise GraphError("cannot realize a node with a marginalized child")
        self.n_realized += 1
        node.value = value
        node.state = NodeState.REALIZED
        node.marginal = None
        node.marginal_child = None
        self._on_realize(node)

    # ------------------------------------------------------------------
    # user-facing operations (Fig. 14's value / observe)
    # ------------------------------------------------------------------
    def value(self, node: DSNode) -> Any:
        """Force a concrete value for ``node``, sampling if necessary."""
        if node.state is NodeState.REALIZED:
            return node.value
        self.graft(node)
        marginal = self.posterior_marginal(node)
        drawn = marginal.sample(self.rng)
        self.realize(node, drawn)
        return drawn

    def observe(self, node: DSNode, value: Any) -> float:
        """Condition the graph on ``node == value``; returns the log-score.

        The score is the *marginal* (predictive) density of the
        observation — this is what makes delayed sampling a
        Rao-Blackwellized particle filter.
        """
        if node.state is NodeState.REALIZED:
            raise GraphError("cannot observe an already-realized node")
        self.graft(node)
        marginal = self.posterior_marginal(node)
        log_weight = marginal.log_pdf(value)
        self.realize(node, value)
        return log_weight

    def marginal_snapshot(self, node: DSNode) -> Distribution:
        """Current posterior marginal of ``node`` without realizing it.

        ProbZelus' ``infer`` reports distributions at every step without
        forcing realization (Section 5.3): realized nodes lift to Dirac,
        marginalized nodes report their (folded) marginal, and
        initialized nodes are resolved by walking the ancestor chain
        without mutating the graph.
        """
        if node.state is NodeState.REALIZED:
            # Realized values are final; the persistent delayed engines
            # snapshot every particle's output each step, so memoize the
            # Dirac instead of re-allocating it per step per particle.
            if node.snapshot_cache is None:
                node.snapshot_cache = Delta(node.value)
            return node.snapshot_cache
        if node.state is NodeState.MARGINALIZED:
            return self.posterior_marginal(node)
        # Initialized: fold conditionals down from the nearest
        # non-initialized ancestor.
        chain: List[DSNode] = []
        cursor: Optional[DSNode] = node
        while cursor is not None and cursor.state is NodeState.INITIALIZED:
            chain.append(cursor)
            cursor = cursor.parent
        if cursor is None:
            raise GraphError("initialized node chain has no anchored ancestor")
        if cursor.state is NodeState.REALIZED:
            base: Optional[Distribution] = None
            base_value = cursor.value
        else:
            base = self.posterior_marginal(cursor)
            base_value = None
        for link in reversed(chain):
            if base is None:
                base = link.cdistr.at_parent_value(base_value)
            else:
                base = link.cdistr.marginalize(base)
        return base

    # ------------------------------------------------------------------
    # pointer-policy hooks
    # ------------------------------------------------------------------
    def posterior_marginal(self, node: DSNode) -> Distribution:
        """Marginal of a marginalized node with all evidence folded in."""
        raise NotImplementedError

    def _on_assume_edge(self, parent: DSNode, child: DSNode) -> None:
        raise NotImplementedError

    def _on_marginalize_edge(self, parent: DSNode, child: DSNode) -> None:
        raise NotImplementedError

    def _on_realize(self, node: DSNode) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _live_marginal_child(self, node: DSNode) -> Optional[DSNode]:
        """The node's marginalized child, if it is still marginalized.

        The pointer-minimal implementation cannot clear a parent's
        ``marginal_child`` field when the child is realized (the child
        holds no back-pointer), so staleness is checked lazily here.
        """
        child = node.marginal_child
        if child is not None and child.state is NodeState.MARGINALIZED:
            return child
        return None


class DelayedGraph(BaseGraph):
    """Original delayed sampling (Murray et al. 2018).

    Bidirectional edges, removed only at realization; eager conditioning
    of the parent when a child is realized.
    """

    pointer_minimal = False

    def posterior_marginal(self, node: DSNode) -> Distribution:
        if node.state is not NodeState.MARGINALIZED:
            raise GraphError("posterior_marginal expects a marginalized node")
        return node.marginal  # conditioning is eager: always up to date

    def _on_assume_edge(self, parent: DSNode, child: DSNode) -> None:
        parent.children.append(child)

    def _on_marginalize_edge(self, parent: DSNode, child: DSNode) -> None:
        # Bidirectional pointers are kept: this is precisely what keeps
        # the whole marginalized history reachable (Fig. 3).
        pass

    def _on_realize(self, node: DSNode) -> None:
        parent = node.parent
        if parent is not None:
            if parent.state is NodeState.MARGINALIZED:
                parent.marginal = node.cdistr.posterior(parent.marginal, node.value)
            if parent.marginal_child is node:
                parent.marginal_child = None
            if node in parent.children:
                parent.children.remove(node)
            node.parent = None
        # Initialized children become marginalized roots immediately.
        for child in node.children:
            if child.state is NodeState.INITIALIZED:
                child.marginal = child.cdistr.at_parent_value(node.value)
                child.state = NodeState.MARGINALIZED
                child.parent = None
        node.children = []


def reachable_nodes(roots: Iterable[DSNode]) -> Set[DSNode]:
    """All graph nodes reachable from ``roots`` through retained pointers.

    This is the "live heap" of the delayed-sampling structure as a
    garbage collector would see it: the paper's ideal-memory experiment
    (Section 6.3) measures exactly this quantity.
    """
    seen: Set[int] = set()
    result: Set[DSNode] = set()
    stack: List[DSNode] = [r for r in roots if r is not None]
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        result.add(node)
        neighbors: List[Optional[DSNode]] = [node.parent, node.marginal_child]
        neighbors.extend(node.children)
        for nxt in neighbors:
            if nxt is not None and id(nxt) not in seen:
                stack.append(nxt)
    return result


def graph_memory_words(roots: Iterable[DSNode]) -> int:
    """Total abstract words held live by the graph, from ``roots``."""
    nodes = reachable_nodes(roots)
    words = 0
    for node in nodes:
        words += node.memory_words()
        words += len(node.children) + 2  # pointer fields
    return words
