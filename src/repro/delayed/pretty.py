"""Textual rendering of delayed-sampling graphs.

Renders the live portion of a graph the way the paper draws Fig. 3 and
Fig. 15: one line per node with its state, distribution/value, and the
pointers it retains. Used by the examples and handy when debugging
conjugacy chains.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.delayed.graph import reachable_nodes
from repro.delayed.node import DSNode, NodeState

__all__ = ["render_graph", "node_summary"]

_STATE_GLYPH = {
    NodeState.INITIALIZED: "init",
    NodeState.MARGINALIZED: "marg",
    NodeState.REALIZED: "real",
}


def node_summary(node: DSNode) -> str:
    """One-line description of a node."""
    label = node.name or f"#{node.uid}"
    state = _STATE_GLYPH[node.state]
    if node.state is NodeState.REALIZED:
        payload = f"value={node.value!r}"
    elif node.state is NodeState.MARGINALIZED:
        payload = f"marginal={node.marginal!r}"
    else:
        payload = f"cond={node.cdistr!r}"
    pointers = []
    if node.parent is not None:
        pointers.append(f"parent->{node.parent.name or node.parent.uid}")
    for child in node.children:
        pointers.append(f"child->{child.name or child.uid}")
    live_mc = node.marginal_child
    if live_mc is not None and live_mc.state is NodeState.MARGINALIZED:
        pointers.append(f"mchild->{live_mc.name or live_mc.uid}")
    pointer_text = " ".join(pointers) if pointers else "(no pointers)"
    return f"{label:>8} [{state}] {payload}  {pointer_text}"


def render_graph(roots: Iterable[DSNode]) -> str:
    """Render every node reachable from ``roots``, stable order by uid."""
    nodes: List[DSNode] = sorted(reachable_nodes(roots), key=lambda n: n.uid)
    if not nodes:
        return "(empty graph)"
    return "\n".join(node_summary(n) for n in nodes)
