"""The ``assume`` / ``observe`` / ``value`` / ``distribution`` interface.

These are the four functions of Fig. 14 and Section 5.3, connecting model
code (which manipulates symbolic expressions and lifted distributions) to
a delayed-sampling graph:

* :func:`assume` adds a random variable, detecting conjugacy between the
  symbolic distribution term and an existing variable; when symbolic
  computation is impossible, it breaks dependencies by realizing the
  variables appearing in the term,
* :func:`observe_dist` assumes then conditions, returning the marginal
  log-likelihood of the observation (the particle's weight update),
* :func:`value_expr` forces a symbolic term to a concrete value,
* :func:`lift_distribution` is the paper's ``distribution(e, g)``:
  the closed-form distribution of a symbolic term, concrete values lifted
  to Dirac, affine images of Gaussian variables transformed exactly.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.delayed.conjugacy import (
    AffineGaussian,
    GaussianUnknownVariance,
    BetaBernoulli,
    BetaBinomial,
    DirichletCategorical,
    GammaPoisson,
    GaussianProjection,
    MvAffineGaussian,
)
from repro.delayed.graph import BaseGraph
from repro.delayed.node import DSNode
from repro.dists import Delta, Distribution, Gaussian, MvGaussian, TupleDist
from repro.errors import GraphError
from repro.lang.lifted import (
    SymDist,
    bernoulli,
    binomial,
    categorical,
    gaussian,
    mv_gaussian,
    poisson,
)
from repro.symbolic import RVar, extract_affine, eval_expr, is_symbolic

__all__ = ["assume", "observe_dist", "value_expr", "lift_distribution"]


def value_expr(graph: BaseGraph, expr: Any) -> Any:
    """Concrete value of ``expr``, realizing random variables as needed."""
    if not is_symbolic(expr):
        return expr
    return eval_expr(expr, graph.value)


def assume(graph: BaseGraph, dist: Any, name: str = "") -> DSNode:
    """Add the random variable described by ``dist`` to the graph.

    ``dist`` is either a concrete :class:`Distribution` (a new root) or a
    :class:`SymDist` whose parameters reference existing variables. A
    conjugacy relationship with a single parent variable produces an
    initialized child node; otherwise the referenced variables are
    realized and the collapsed concrete distribution becomes a root.
    """
    if isinstance(dist, Distribution):
        return graph.assume_root(dist, name=name)
    if not isinstance(dist, SymDist):
        raise GraphError(f"assume expects a distribution, got {type(dist).__name__}")

    node = _try_conjugate(graph, dist, name)
    if node is not None:
        return node
    # No symbolic relationship: break dependencies by realization.
    concrete = _force_concrete(graph, dist)
    return graph.assume_root(concrete, name=name)


def observe_dist(graph: BaseGraph, dist: Any, value: Any, name: str = "") -> float:
    """Condition on an observation drawn from ``dist``; returns log-weight."""
    node = assume(graph, dist, name=name)
    concrete_value = value_expr(graph, value)
    return graph.observe(node, concrete_value)


def lift_distribution(graph: BaseGraph, expr: Any) -> Distribution:
    """Closed-form distribution of a symbolic term (``distribution(e, g)``).

    Concrete values become Dirac deltas; a bare variable reports its
    posterior marginal snapshot; an affine image of a Gaussian variable
    is transformed in closed form; tuples become products. Non-affine
    symbolic terms cannot be represented in closed form, so their
    variables are realized first (the same dependency-breaking rule as
    ``assume``).
    """
    if not is_symbolic(expr):
        return Delta(expr)
    if isinstance(expr, RVar):
        return graph.marginal_snapshot(expr.node)
    if isinstance(expr, tuple):
        return TupleDist([lift_distribution(graph, e) for e in expr])
    form = extract_affine(expr)
    if form is not None and form.rv is not None:
        base = graph.marginal_snapshot(form.rv)
        transformed = _affine_image(base, form.coeff, form.const)
        if transformed is not None:
            return transformed
    return Delta(value_expr(graph, expr))


# ----------------------------------------------------------------------
# conjugacy detection
# ----------------------------------------------------------------------

def _try_conjugate(graph: BaseGraph, dist: SymDist, name: str):
    """Initialized child node if ``dist`` is conjugate to one variable."""
    kind = dist.kind
    if kind == "gaussian":
        mean, var = dist.params
        if is_symbolic(var):
            # unknown variance: N(mu, sigma2) with sigma2 ~ InverseGamma
            parent = _identity_parent(var, "inverse_gamma")
            if parent is not None and not is_symbolic(mean):
                cdistr = GaussianUnknownVariance(float(mean))
                return graph.assume_conditional(cdistr, parent, name=name)
            return None
        form = extract_affine(mean)
        if form is None or form.rv is None:
            return None
        parent = form.rv
        if parent.family == "gaussian" and np.ndim(form.coeff) == 0:
            cdistr = AffineGaussian(form.coeff, form.const, float(var))
            return graph.assume_conditional(cdistr, parent, name=name)
        if parent.family == "mv_gaussian" and np.ndim(form.coeff) == 1:
            cdistr = GaussianProjection(form.coeff, form.const, float(var))
            return graph.assume_conditional(cdistr, parent, name=name)
        return None
    if kind == "mv_gaussian":
        mean, cov = dist.params
        if is_symbolic(cov):
            return None
        form = extract_affine(mean)
        if form is None or form.rv is None:
            return None
        parent = form.rv
        if parent.family == "mv_gaussian" and np.ndim(form.coeff) == 2:
            cdistr = MvAffineGaussian(form.coeff, form.const, np.asarray(cov))
            return graph.assume_conditional(cdistr, parent, name=name)
        return None
    if kind == "bernoulli":
        (p,) = dist.params
        parent = _identity_parent(p, "beta")
        if parent is None:
            return None
        return graph.assume_conditional(BetaBernoulli(), parent, name=name)
    if kind == "binomial":
        n, p = dist.params
        if is_symbolic(n):
            return None
        parent = _identity_parent(p, "beta")
        if parent is None:
            return None
        return graph.assume_conditional(BetaBinomial(int(n)), parent, name=name)
    if kind == "poisson":
        (lam,) = dist.params
        parent = _identity_parent(lam, "gamma")
        if parent is None:
            return None
        return graph.assume_conditional(GammaPoisson(), parent, name=name)
    if kind == "categorical":
        (probs,) = dist.params
        parent = _identity_parent(probs, "dirichlet")
        if parent is None:
            return None
        return graph.assume_conditional(DirichletCategorical(), parent, name=name)
    return None


def _identity_parent(expr: Any, family: str):
    """The graph node if ``expr`` is exactly a variable of ``family``."""
    if isinstance(expr, RVar) and expr.node.family == family:
        return expr.node
    return None


def _force_concrete(graph: BaseGraph, dist: SymDist) -> Distribution:
    """Realize the variables in a symbolic distribution's parameters."""
    params = tuple(value_expr(graph, p) for p in dist.params)
    constructors = {
        "gaussian": gaussian,
        "mv_gaussian": mv_gaussian,
        "bernoulli": bernoulli,
        "binomial": binomial,
        "poisson": poisson,
        "categorical": categorical,
    }
    from repro.lang import lifted

    constructor = getattr(lifted, dist.kind, None)
    if constructor is None:
        constructor = constructors.get(dist.kind)
    if constructor is None:
        raise GraphError(f"unknown symbolic distribution kind {dist.kind!r}")
    result = constructor(*params)
    if not isinstance(result, Distribution):
        raise GraphError(
            f"symbolic distribution {dist.kind!r} did not collapse after realization"
        )
    return result


def _affine_image(base: Distribution, coeff: Any, const: Any):
    """Distribution of ``coeff * X + const`` for ``X ~ base``, if closed form."""
    if isinstance(base, Gaussian) and np.ndim(coeff) == 0:
        if coeff == 0.0:
            return Delta(const)
        return base.affine(float(coeff), float(const))
    if isinstance(base, MvGaussian):
        if np.ndim(coeff) == 1:
            mean = float(coeff @ base.mu) + float(np.asarray(const).reshape(()))
            var = float(coeff @ base.cov @ coeff)
            if var <= 0.0:
                return Delta(mean)
            return Gaussian(mean, var)
        if np.ndim(coeff) == 2:
            return base.affine(coeff, np.asarray(const).reshape(-1))
    if isinstance(base, Delta):
        value = base.value
        if np.ndim(coeff) == 0:
            return Delta(coeff * value + const)
        return Delta(np.asarray(coeff) @ np.asarray(value) + np.asarray(const))
    return None
