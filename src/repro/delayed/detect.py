"""Structure detection: is a model a linear-Gaussian chain?

The array-native delayed-sampling runtime
(:mod:`repro.vectorized.sds_graph`) handles exactly the models whose
delayed-sampling execution stays inside the linear-Gaussian chain
fragment: every random variable is Gaussian or multivariate Gaussian,
every dependency is affine in a single chain variable, and the model
never branches on (or otherwise forces) a sampled value mid-step — the
lockstep condition that lets one run of the model's Python code drive
all particles at once.

:func:`probe_gaussian_chain` answers that question *empirically*: it
steps the scalar model against an instrumented pointer-minimal graph
over a short probe input stream and reports which conjugacy families
appeared and whether any realization was forced outside ``observe``.
The benchmark layer uses the probe to register its chain models with
the vectorized backend (see ``repro.bench.robot``); user models can do
the same::

    from repro.delayed.detect import probe_gaussian_chain
    from repro.vectorized import register_gaussian_chain_model

    report = probe_gaussian_chain(MyModel(), probe_inputs)
    if report.is_chain:
        register_gaussian_chain_model(MyModel)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Set

import numpy as np

from repro.delayed.streaming import StreamingGraph
from repro.errors import GraphError, SymbolicError

__all__ = ["ChainProbeReport", "probe_gaussian_chain", "GAUSSIAN_FAMILIES"]

#: conjugacy families the array-native chain runtime implements.
GAUSSIAN_FAMILIES = frozenset({"gaussian", "mv_gaussian"})


@dataclass(frozen=True)
class ChainProbeReport:
    """What a probe run of a model observed.

    ``is_chain`` is the verdict; the remaining fields say why: the
    conjugacy ``families`` touched, how many realizations were
    ``forced`` outside ``observe`` (value forcing / dependency
    breaking — both defeat lockstep batching), the number of probe
    ``steps`` executed, and a human-readable ``reason`` when the model
    is rejected.
    """

    is_chain: bool
    families: frozenset = frozenset()
    forced: int = 0
    steps: int = 0
    reason: str = ""


class _ProbeGraph(StreamingGraph):
    """A streaming graph that records families and observe realizations."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        super().__init__(rng=rng)
        self.families: Set[str] = set()
        self.observed = 0

    def assume_root(self, marginal, name=""):
        node = super().assume_root(marginal, name=name)
        self.families.add(node.family)
        return node

    def assume_conditional(self, cdistr, parent, name=""):
        node = super().assume_conditional(cdistr, parent, name=name)
        self.families.add(node.family)
        return node

    def observe(self, node, value):
        self.observed += 1
        return super().observe(node, value)


def probe_gaussian_chain(
    model: Any,
    inputs: Sequence[Any],
    seed: int = 0,
) -> ChainProbeReport:
    """Run ``model`` over ``inputs`` and report its chain structure.

    The probe executes the model's *scalar* delayed-sampling semantics
    (a single pointer-minimal graph, i.e. one particle) for a few steps.
    Two or more inputs are recommended so both the initial and the
    steady-state transition structure are observed — e.g. for the robot
    tracker, one step with a GPS fix and one without.

    The verdict is conservative in both directions it needs to be:
    a model is a chain only if every assumed variable is Gaussian /
    multivariate Gaussian *and* no realization happened outside
    ``observe`` (``ctx.value`` forcing, or ``assume`` breaking a
    non-affine dependency by realization — either one means per-particle
    values feed the graph structure, which the lockstep batched runtime
    does not admit). A model that raises a graph or symbolic error
    (e.g. branching on a symbolic value) is likewise not a chain.
    """
    # Imported lazily: repro.inference.contexts itself imports the
    # delayed-sampling package, so a module-level import would be circular.
    from repro.inference.contexts import DelayedCtx

    if not inputs:
        return ChainProbeReport(False, reason="no probe inputs provided")
    graph = _ProbeGraph(rng=np.random.default_rng(seed))
    ctx = DelayedCtx(graph)
    state = model.init()
    steps = 0
    try:
        for inp in inputs:
            _, state = model.step(state, inp, ctx)
            steps += 1
    except (GraphError, SymbolicError, ValueError, TypeError) as exc:
        return ChainProbeReport(
            False,
            families=frozenset(graph.families),
            steps=steps,
            reason=f"probe step raised {type(exc).__name__}: {exc}",
        )
    # Each observe realizes exactly one node; anything beyond that was a
    # forced realization (ctx.value or dependency breaking).
    forced = graph.n_realized - graph.observed
    families = frozenset(graph.families)
    if not families <= GAUSSIAN_FAMILIES:
        extra = sorted(families - GAUSSIAN_FAMILIES)
        return ChainProbeReport(
            False, families, forced, steps,
            reason=f"non-Gaussian families in the graph: {extra}",
        )
    if forced > 0:
        return ChainProbeReport(
            False, families, forced, steps,
            reason=f"{forced} realization(s) forced outside observe",
        )
    return ChainProbeReport(True, families, forced, steps)
