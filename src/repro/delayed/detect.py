"""Structure detection: can a model run on the batched DS graph?

The array-native delayed-sampling runtime
(:mod:`repro.vectorized.sds_graph`) handles exactly the models whose
delayed-sampling execution is *lockstep-batchable*: every random
variable belongs to a family with SoA kernels (Gaussian, multivariate
Gaussian, Beta, Bernoulli, Gamma, Poisson, Dirichlet, Categorical),
every dependency is one of the batched conjugacy edges
(affine-Gaussian — possibly with per-particle coefficients from a
forced indicator — projection, matrix-affine, Beta-Bernoulli,
Gamma-Poisson, Dirichlet-Categorical), and the model's Python control
flow never branches on
a per-particle value — the lockstep condition that lets one run of the
model's code drive all particles at once.

Two probes answer that question *empirically*:

* :func:`probe_gaussian_chain` — the PR-4 detector, restricted to the
  linear-Gaussian chain fragment (Gaussian families only, no forced
  realization). Kept for conservative callers.
* :func:`probe_ds_structure` — the general detector: it first runs the
  scalar model against an instrumented pointer-minimal graph over a
  short probe input stream, reporting the conjugacy families touched,
  how many realizations were forced outside ``observe``, and the shape
  of the structure (``"chain"`` when one sampled variable line exists,
  ``"tree"`` when a step assumes several sampled roots — the Outlier
  model's Beta branch beside its position chain). When the model uses
  forced realization or families beyond the Gaussian pair, the verdict
  is confirmed by a small *batched* smoke run (a 3-particle
  :class:`~repro.vectorized.sds_graph.BatchedDSGraph`): only a model
  whose batched execution actually succeeds is reported batchable.

The benchmark layer uses the probes to register its models with the
vectorized backend (see ``repro.bench.robot`` and
``repro.bench.models``); user models can do the same::

    from repro.delayed.detect import probe_ds_structure
    from repro.vectorized import register_ds_graph_model

    report = probe_ds_structure(MyModel(), probe_inputs)
    if report.is_batchable:
        register_ds_graph_model(MyModel)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Sequence, Set

import numpy as np

from repro.delayed.streaming import StreamingGraph

__all__ = [
    "ChainProbeReport",
    "DSStructureReport",
    "probe_gaussian_chain",
    "probe_ds_structure",
    "GAUSSIAN_FAMILIES",
    "BATCHABLE_FAMILIES",
]

#: conjugacy families of the linear-Gaussian chain fragment (PR 4).
GAUSSIAN_FAMILIES = frozenset({"gaussian", "mv_gaussian"})

#: conjugacy families the generic batched DS graph implements.
BATCHABLE_FAMILIES = frozenset(
    {
        "gaussian",
        "mv_gaussian",
        "beta",
        "bernoulli",
        "gamma",
        "poisson",
        "dirichlet",
        "categorical",
    }
)


@dataclass(frozen=True)
class ChainProbeReport:
    """What a probe run of a model observed.

    ``is_chain`` is the verdict; the remaining fields say why: the
    conjugacy ``families`` touched, how many realizations were
    ``forced`` outside ``observe`` (value forcing / dependency
    breaking — both defeat lockstep batching), the number of probe
    ``steps`` executed, and a human-readable ``reason`` when the model
    is rejected.
    """

    is_chain: bool
    families: frozenset = frozenset()
    forced: int = 0
    steps: int = 0
    reason: str = ""


@dataclass(frozen=True)
class DSStructureReport:
    """What the general delayed-sampling structure probe observed.

    ``is_batchable`` is the verdict: the model can run on the generic
    batched DS graph. ``families`` is the conjugacy family set touched,
    ``forced`` the number of realizations outside ``observe`` (allowed
    here — forced per-particle values may feed parameters, never
    control flow), ``shape`` is ``"chain"`` or ``"tree"`` (several
    sampled variable lines alive in one instant, e.g. the Outlier
    model's Beta→Bernoulli branch beside its position chain), and
    ``reason`` says why a model was rejected.
    """

    is_batchable: bool
    families: frozenset = frozenset()
    forced: int = 0
    steps: int = 0
    shape: str = "chain"
    reason: str = ""

    @property
    def is_chain(self) -> bool:
        """PR-4 compatibility: batchable, Gaussian-only, nothing forced."""
        return (
            self.is_batchable
            and self.forced == 0
            and self.families <= GAUSSIAN_FAMILIES
        )


class _ProbeGraph(StreamingGraph):
    """A streaming graph that records families, roots, and realizations."""

    def __init__(self, rng: Optional[np.random.Generator] = None):
        super().__init__(rng=rng)
        self.families: Set[str] = set()
        self.observed = 0
        #: sampled (non-observation) roots assumed in the current step.
        self.step_sample_roots = 0
        #: max simultaneous sampled roots over any probed step.
        self.max_sample_roots = 0

    def assume_root(self, marginal, name=""):
        node = super().assume_root(marginal, name=name)
        self.families.add(node.family)
        if not name.startswith("y"):
            self.step_sample_roots += 1
            self.max_sample_roots = max(
                self.max_sample_roots, self.step_sample_roots
            )
        return node

    def assume_conditional(self, cdistr, parent, name=""):
        node = super().assume_conditional(cdistr, parent, name=name)
        self.families.add(node.family)
        return node

    def observe(self, node, value):
        self.observed += 1
        return super().observe(node, value)

    def next_step(self) -> None:
        self.step_sample_roots = 0


def _run_scalar_probe(model: Any, inputs: Sequence[Any], seed: int):
    """Step the scalar delayed-sampling semantics; return (graph, steps, err)."""
    # Imported lazily: repro.inference.contexts itself imports the
    # delayed-sampling package, so a module-level import would be circular.
    from repro.inference.contexts import DelayedCtx

    graph = _ProbeGraph(rng=np.random.default_rng(seed))
    ctx = DelayedCtx(graph)
    steps = 0
    # Broad catch on purpose: the probe's contract is to *report*, never
    # to raise — an exception escaping here would abort the caller's
    # probe-then-register block halfway.
    try:
        state = model.init()
    except Exception as exc:
        return graph, steps, (
            f"probe failed [stage=init]: {type(exc).__name__}: {exc}"
        )
    try:
        for inp in inputs:
            graph.next_step()
            _, state = model.step(state, inp, ctx)
            steps += 1
    except Exception as exc:
        return graph, steps, f"probe step raised {type(exc).__name__}: {exc}"
    return graph, steps, None


def probe_gaussian_chain(
    model: Any,
    inputs: Sequence[Any],
    seed: int = 0,
) -> ChainProbeReport:
    """Run ``model`` over ``inputs`` and report its chain structure.

    The probe executes the model's *scalar* delayed-sampling semantics
    (a single pointer-minimal graph, i.e. one particle) for a few steps.
    Two or more inputs are recommended so both the initial and the
    steady-state transition structure are observed — e.g. for the robot
    tracker, one step with a GPS fix and one without.

    The verdict is conservative in both directions it needs to be:
    a model is a chain only if every assumed variable is Gaussian /
    multivariate Gaussian *and* no realization happened outside
    ``observe`` (``ctx.value`` forcing, or ``assume`` breaking a
    non-affine dependency by realization). A model that raises a graph
    or symbolic error (e.g. branching on a symbolic value) is likewise
    not a chain. Models that use the wider batched fragment — Beta /
    Bernoulli slots, forced indicators — are rejected here but may
    still be batchable; ask :func:`probe_ds_structure`.
    """
    if not inputs:
        return ChainProbeReport(False, reason="no probe inputs provided")
    graph, steps, error = _run_scalar_probe(model, inputs, seed)
    families = frozenset(graph.families)
    if error is not None:
        return ChainProbeReport(False, families=families, steps=steps, reason=error)
    # Each observe realizes exactly one node; anything beyond that was a
    # forced realization (ctx.value or dependency breaking).
    forced = graph.n_realized - graph.observed
    if not families <= GAUSSIAN_FAMILIES:
        extra = sorted(families - GAUSSIAN_FAMILIES)
        return ChainProbeReport(
            False, families, forced, steps,
            reason=f"non-Gaussian families in the graph: {extra}",
        )
    if forced > 0:
        return ChainProbeReport(
            False, families, forced, steps,
            reason=f"{forced} realization(s) forced outside observe",
        )
    return ChainProbeReport(True, families, forced, steps)


def _run_batched_probe(
    model: Any, inputs: Sequence[Any], seed: int, n: int
) -> Optional[str]:
    """Smoke-run the model on a small batched graph; None means success.

    Failure-atomic by construction: *every* exception — including ones
    outside the anticipated graph/symbolic/inference family, e.g. a
    numpy shape error or an ``AttributeError`` in user model code — is
    converted to a structured, stage-tagged reason string and never
    propagated, and the smoke run touches no global registries. A
    failed probe therefore cannot abort a caller's registration block
    halfway and leave a model partially registered.
    """
    # Imported lazily: repro.vectorized imports this module's package.
    from repro.vectorized.sds_graph import BatchedDelayedCtx, BatchedDSGraph

    graph = BatchedDSGraph(n, rng=np.random.default_rng(seed))
    ctx = BatchedDelayedCtx(graph)
    try:
        state = model.init()
    except Exception as exc:
        return (
            f"batched probe failed [stage=init]: "
            f"{type(exc).__name__}: {exc}"
        )
    for i, inp in enumerate(inputs):
        try:
            _, state = model.step(state, inp, ctx)
        except Exception as exc:
            return (
                f"batched probe failed [stage=step index={i}]: "
                f"{type(exc).__name__}: {exc}"
            )
    return None


def probe_ds_structure(
    model: Any,
    inputs: Sequence[Any],
    seed: int = 0,
    batch_check: int = 3,
) -> DSStructureReport:
    """Run ``model`` over ``inputs``; report families, shape, batchability.

    The general counterpart of :func:`probe_gaussian_chain` for the
    generic batched DS graph. The scalar probe collects the family set,
    the forced-realization count, and the structure shape; a model
    whose families lie inside :data:`BATCHABLE_FAMILIES` is then
    *verified* by a ``batch_check``-particle batched smoke run whenever
    the scalar probe alone cannot vouch for lockstep execution (forced
    realizations, non-Gaussian families) — a forced per-particle value
    that feeds a parameter batches fine, one that feeds an ``if`` does
    not, and only actually running the batched semantics tells them
    apart.
    """
    if not inputs:
        return DSStructureReport(False, reason="no probe inputs provided")
    graph, steps, error = _run_scalar_probe(model, inputs, seed)
    families = frozenset(graph.families)
    forced = max(0, graph.n_realized - graph.observed)
    shape = "tree" if graph.max_sample_roots >= 2 else "chain"
    if error is not None:
        return DSStructureReport(
            False, families, forced, steps, shape, reason=error
        )
    if not families <= BATCHABLE_FAMILIES:
        extra = sorted(families - BATCHABLE_FAMILIES)
        return DSStructureReport(
            False, families, forced, steps, shape,
            reason=f"families without batched kernels: {extra}",
        )
    if forced == 0 and families <= GAUSSIAN_FAMILIES:
        # Pure chain: the scalar probe is already conclusive.
        return DSStructureReport(True, families, forced, steps, shape)
    reason = _run_batched_probe(model, inputs, seed, batch_check)
    if reason is not None:
        return DSStructureReport(False, families, forced, steps, shape, reason)
    return DSStructureReport(True, families, forced, steps, shape)
