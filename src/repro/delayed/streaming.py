"""Pointer-minimal streaming delayed-sampling graph (Section 5.3, Fig. 15).

The streaming implementation differs from the original graph in exactly
the ways the paper describes:

* **initialized nodes only keep a pointer to their parent** — needed to
  follow the ancestor chain during marginalization; the parent does not
  learn about the child yet,
* **marginalization turns the backward pointer into a forward pointer**:
  when a child is marginalized it drops its parent pointer and the
  parent records the child,
* **conditioning a parent on a realized child is deferred** until the
  parent's marginal is next needed (when a new child is marginalized
  against it, when its posterior is inspected, or when it is itself
  realized). The parent finds the realized child through its forward
  pointer, folds the evidence into its marginal, and drops the pointer.

The payoff: once the program stops referencing an old time step's
variable, nothing in the graph points *backwards* at it, so an ordinary
garbage collector reclaims the whole prefix of the chain. Memory stays
constant over time for state-space models (Fig. 4 / Fig. 19).
"""

from __future__ import annotations

from repro.delayed.graph import BaseGraph
from repro.delayed.node import DSNode, NodeState
from repro.dists import Distribution
from repro.errors import GraphError

__all__ = ["StreamingGraph"]


class StreamingGraph(BaseGraph):
    """Pointer-minimal delayed-sampling graph (the paper's SDS graph)."""

    pointer_minimal = True

    def posterior_marginal(self, node: DSNode) -> Distribution:
        """Fold pending evidence from realized children, then report.

        This is the deferred-conditioning step: every realized,
        not-yet-folded child found through a forward pointer updates the
        marginal, after which the pointer is dropped so the child can be
        collected.
        """
        if node.state is not NodeState.MARGINALIZED:
            raise GraphError("posterior_marginal expects a marginalized node")
        if node.children:
            remaining = []
            for child in node.children:
                if child.state is NodeState.REALIZED and not child.folded:
                    node.marginal = child.cdistr.posterior(node.marginal, child.value)
                    child.folded = True
                elif child.state is not NodeState.REALIZED:
                    remaining.append(child)
            node.children = remaining
        return node.marginal

    def _on_assume_edge(self, parent: DSNode, child: DSNode) -> None:
        # Backward pointer only: the child was given `parent` at
        # construction; the parent records nothing.
        pass

    def _on_marginalize_edge(self, parent: DSNode, child: DSNode) -> None:
        # Flip the edge: forward pointer in, backward pointer out.
        parent.children.append(child)
        child.parent = None

    def _on_realize(self, node: DSNode) -> None:
        # Parent conditioning is deferred: the parent still holds a
        # forward pointer to this node and will fold its value in when
        # its own marginal is next requested. The realized node keeps
        # only `value` and `cdistr` (read by the parent's fold).
        #
        # If this node was realized *while still holding a parent
        # pointer* it would mean realize() was called on an initialized
        # node, which graft() prevents; marginalized nodes already
        # dropped their parent pointer.
        if node.parent is not None:
            raise GraphError("streaming marginalized node still has a parent pointer")
        # Forward pointers to children are dropped; initialized children
        # keep their backward pointer to this (now realized) node and
        # collapse to marginalized roots lazily, in marginalize().
        node.children = []
