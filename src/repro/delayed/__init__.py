"""Delayed sampling: graphs, conjugacy, and the assume/observe interface."""

from repro.delayed.conjugacy import (
    AffineGaussian,
    BetaBernoulli,
    BetaBinomial,
    ConditionalDist,
    DirichletCategorical,
    GammaPoisson,
    GaussianProjection,
    GaussianUnknownVariance,
    MvAffineGaussian,
)
from repro.delayed.graph import (
    BaseGraph,
    DelayedGraph,
    graph_memory_words,
    reachable_nodes,
)
from repro.delayed.interface import (
    assume,
    lift_distribution,
    observe_dist,
    value_expr,
)
from repro.delayed.detect import (
    BATCHABLE_FAMILIES,
    GAUSSIAN_FAMILIES,
    ChainProbeReport,
    DSStructureReport,
    probe_ds_structure,
    probe_gaussian_chain,
)
from repro.delayed.node import DSNode, NodeState, family_of_dist
from repro.delayed.streaming import StreamingGraph

__all__ = [
    "ChainProbeReport",
    "DSStructureReport",
    "probe_gaussian_chain",
    "probe_ds_structure",
    "GAUSSIAN_FAMILIES",
    "BATCHABLE_FAMILIES",
    "BaseGraph",
    "DelayedGraph",
    "StreamingGraph",
    "DSNode",
    "NodeState",
    "family_of_dist",
    "reachable_nodes",
    "graph_memory_words",
    "assume",
    "observe_dist",
    "value_expr",
    "lift_distribution",
    "ConditionalDist",
    "AffineGaussian",
    "MvAffineGaussian",
    "GaussianProjection",
    "BetaBernoulli",
    "BetaBinomial",
    "GammaPoisson",
    "DirichletCategorical",
    "GaussianUnknownVariance",
]
