"""Conjugacy relationships used by delayed sampling.

A :class:`ConditionalDist` represents a parametric conditional
``p(x | parent)`` for which the three symbolic computations of delayed
sampling (Murray et al. 2018, Section 5.2 of the paper) are closed form:

* ``marginalize``: compute ``p(x)`` from the parent's marginal
  (the paper's lower-level ``marginalize(X, g)``),
* ``posterior``: compute ``p(parent | x = v)`` from the parent's marginal
  and a realized child value (the paper's ``condition(Y, g)``),
* ``at_parent_value``: instantiate ``p(x | parent = v)`` once the parent
  is realized.

Implemented families (the first two cover every benchmark in the paper;
the rest extend coverage to the classic exponential-family pairs):

* linear-Gaussian, scalar:      x | y ~ N(a*y + b, var),  y Gaussian
* linear-Gaussian, multivariate: x | y ~ N(A@y + b, cov), y MvGaussian
* Gaussian projection:          x | y ~ N(a.y + b, var),  y MvGaussian
* Beta-Bernoulli, Beta-Binomial
* Gamma-Poisson
* Dirichlet-Categorical
"""

from __future__ import annotations

import abc
from typing import Any

import numpy as np

from repro.dists import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Dirichlet,
    Distribution,
    Gamma,
    Gaussian,
    MvGaussian,
    Poisson,
)
from repro.errors import GraphError

__all__ = [
    "ConditionalDist",
    "AffineGaussian",
    "MvAffineGaussian",
    "GaussianProjection",
    "BetaBernoulli",
    "BetaBinomial",
    "GammaPoisson",
    "DirichletCategorical",
    "GaussianUnknownVariance",
]


class ConditionalDist(abc.ABC):
    """A conjugate conditional distribution ``p(x | parent)``.

    Instances are immutable; they are stored on *initialized* graph nodes
    and consumed by the graph operations.
    """

    #: family tag the parent's marginal must belong to (e.g. "gaussian").
    parent_family: str = ""
    #: family tag of the child this conditional produces.
    child_family: str = ""

    @abc.abstractmethod
    def marginalize(self, parent_marginal: Distribution) -> Distribution:
        """Marginal ``p(x)`` under the parent's current marginal."""

    @abc.abstractmethod
    def posterior(self, parent_marginal: Distribution, value: Any) -> Distribution:
        """Posterior ``p(parent | x = value)``."""

    @abc.abstractmethod
    def at_parent_value(self, parent_value: Any) -> Distribution:
        """Conditional ``p(x | parent = value)`` for a realized parent."""


class AffineGaussian(ConditionalDist):
    """``x | y ~ N(a*y + b, var)`` with a scalar Gaussian parent.

    The one-dimensional Kalman relationship: ``marginalize`` is the
    prediction step, ``posterior`` the measurement update.
    """

    parent_family = "gaussian"
    child_family = "gaussian"
    __slots__ = ("a", "b", "var")

    def __init__(self, a: float, b: float, var: float):
        self.a = float(a)
        self.b = float(b)
        self.var = float(var)
        if not self.var > 0.0:
            raise GraphError(f"conditional variance must be > 0, got {var!r}")

    def marginalize(self, parent_marginal: Gaussian) -> Gaussian:
        _check(parent_marginal, Gaussian, "AffineGaussian")
        return Gaussian(
            self.a * parent_marginal.mu + self.b,
            self.a * self.a * parent_marginal.var + self.var,
        )

    def posterior(self, parent_marginal: Gaussian, value: float) -> Gaussian:
        _check(parent_marginal, Gaussian, "AffineGaussian")
        mu0, var0 = parent_marginal.mu, parent_marginal.var
        innovation_var = self.a * self.a * var0 + self.var
        gain = var0 * self.a / innovation_var
        residual = float(value) - (self.a * mu0 + self.b)
        post_mu = mu0 + gain * residual
        post_var = (1.0 - gain * self.a) * var0
        return Gaussian(post_mu, max(post_var, 1e-300))

    def at_parent_value(self, parent_value: float) -> Gaussian:
        return Gaussian(self.a * float(parent_value) + self.b, self.var)

    def __repr__(self) -> str:
        return f"AffineGaussian(a={self.a:.4g}, b={self.b:.4g}, var={self.var:.4g})"


class MvAffineGaussian(ConditionalDist):
    """``x | y ~ N(A@y + b, cov)`` with a multivariate Gaussian parent.

    The matrix Kalman relationship used by the robot tracking example.
    """

    parent_family = "mv_gaussian"
    child_family = "mv_gaussian"
    __slots__ = ("a", "b", "cov")

    def __init__(self, a, b, cov):
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float).reshape(-1)
        self.cov = np.asarray(cov, dtype=float)
        if self.a.ndim != 2:
            raise GraphError("A must be a matrix")
        if self.cov.shape != (self.a.shape[0], self.a.shape[0]):
            raise GraphError("cov shape does not match A rows")

    def marginalize(self, parent_marginal: MvGaussian) -> MvGaussian:
        _check(parent_marginal, MvGaussian, "MvAffineGaussian")
        mean = self.a @ parent_marginal.mu + self.b
        cov = self.a @ parent_marginal.cov @ self.a.T + self.cov
        return MvGaussian(mean, cov)

    def posterior(self, parent_marginal: MvGaussian, value) -> MvGaussian:
        _check(parent_marginal, MvGaussian, "MvAffineGaussian")
        value = np.asarray(value, dtype=float).reshape(-1)
        mu0, cov0 = parent_marginal.mu, parent_marginal.cov
        innovation_cov = self.a @ cov0 @ self.a.T + self.cov
        gain = cov0 @ self.a.T @ np.linalg.pinv(innovation_cov)
        residual = value - (self.a @ mu0 + self.b)
        post_mu = mu0 + gain @ residual
        identity = np.eye(cov0.shape[0])
        post_cov = (identity - gain @ self.a) @ cov0
        post_cov = 0.5 * (post_cov + post_cov.T)  # re-symmetrize
        return MvGaussian(post_mu, post_cov)

    def at_parent_value(self, parent_value) -> MvGaussian:
        parent_value = np.asarray(parent_value, dtype=float).reshape(-1)
        return MvGaussian(self.a @ parent_value + self.b, self.cov)

    def __repr__(self) -> str:
        return f"MvAffineGaussian(shape={self.a.shape})"


class GaussianProjection(ConditionalDist):
    """Scalar ``x | y ~ N(a . y + b, var)`` with a multivariate parent.

    Covers scalar sensor readings of a vector state: GPS position or
    accelerometer observations in the robot example are one-hot (or
    general row) projections of the latent state vector.
    """

    parent_family = "mv_gaussian"
    child_family = "gaussian"
    __slots__ = ("row", "b", "var")

    def __init__(self, row, b: float, var: float):
        self.row = np.asarray(row, dtype=float).reshape(-1)
        self.b = float(b)
        self.var = float(var)
        if not self.var > 0.0:
            raise GraphError(f"conditional variance must be > 0, got {var!r}")

    def marginalize(self, parent_marginal: MvGaussian) -> Gaussian:
        _check(parent_marginal, MvGaussian, "GaussianProjection")
        mean = float(self.row @ parent_marginal.mu + self.b)
        var = float(self.row @ parent_marginal.cov @ self.row) + self.var
        return Gaussian(mean, var)

    def posterior(self, parent_marginal: MvGaussian, value: float) -> MvGaussian:
        _check(parent_marginal, MvGaussian, "GaussianProjection")
        mu0, cov0 = parent_marginal.mu, parent_marginal.cov
        innovation_var = float(self.row @ cov0 @ self.row) + self.var
        gain = (cov0 @ self.row) / innovation_var
        residual = float(value) - float(self.row @ mu0 + self.b)
        post_mu = mu0 + gain * residual
        post_cov = cov0 - np.outer(gain, self.row @ cov0)
        post_cov = 0.5 * (post_cov + post_cov.T)
        return MvGaussian(post_mu, post_cov)

    def at_parent_value(self, parent_value) -> Gaussian:
        parent_value = np.asarray(parent_value, dtype=float).reshape(-1)
        return Gaussian(float(self.row @ parent_value + self.b), self.var)

    def __repr__(self) -> str:
        return f"GaussianProjection(dim={self.row.size})"


class BetaBernoulli(ConditionalDist):
    """``x | theta ~ Bernoulli(theta)`` with a Beta parent.

    The Coin benchmark's conjugacy (Appendix B.2) and the Outlier
    benchmark's outlier-indicator relationship.
    """

    parent_family = "beta"
    child_family = "bernoulli"
    __slots__ = ()

    def marginalize(self, parent_marginal: Beta) -> Bernoulli:
        _check(parent_marginal, Beta, "BetaBernoulli")
        return Bernoulli(parent_marginal.mean())

    def posterior(self, parent_marginal: Beta, value) -> Beta:
        _check(parent_marginal, Beta, "BetaBernoulli")
        if bool(value):
            return parent_marginal.with_counts(1, 0)
        return parent_marginal.with_counts(0, 1)

    def at_parent_value(self, parent_value: float) -> Bernoulli:
        return Bernoulli(float(parent_value))

    def __repr__(self) -> str:
        return "BetaBernoulli()"


class BetaBinomial(ConditionalDist):
    """``x | theta ~ Binomial(n, theta)`` with a Beta parent."""

    parent_family = "beta"
    child_family = "binomial"
    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = int(n)
        if self.n < 0:
            raise GraphError("n must be non-negative")

    def marginalize(self, parent_marginal: Beta) -> Distribution:
        _check(parent_marginal, Beta, "BetaBinomial")
        return _BetaBinomialMarginal(self.n, parent_marginal.alpha, parent_marginal.beta)

    def posterior(self, parent_marginal: Beta, value) -> Beta:
        _check(parent_marginal, Beta, "BetaBinomial")
        k = int(value)
        return parent_marginal.with_counts(k, self.n - k)

    def at_parent_value(self, parent_value: float) -> Binomial:
        return Binomial(self.n, float(parent_value))

    def __repr__(self) -> str:
        return f"BetaBinomial(n={self.n})"


class _BetaBinomialMarginal(Distribution):
    """Beta-Binomial compound distribution (marginal of BetaBinomial)."""

    __slots__ = ("n", "alpha", "beta")

    def __init__(self, n: int, alpha: float, beta: float):
        self.n = int(n)
        self.alpha = float(alpha)
        self.beta = float(beta)

    def sample(self, rng: np.random.Generator) -> int:
        theta = rng.beta(self.alpha, self.beta)
        return int(rng.binomial(self.n, theta))

    def log_pdf(self, value) -> float:
        import math

        k = int(value)
        if k < 0 or k > self.n:
            return -math.inf
        log_comb = (
            math.lgamma(self.n + 1) - math.lgamma(k + 1) - math.lgamma(self.n - k + 1)
        )
        return (
            log_comb
            + math.lgamma(k + self.alpha)
            + math.lgamma(self.n - k + self.beta)
            - math.lgamma(self.n + self.alpha + self.beta)
            + math.lgamma(self.alpha + self.beta)
            - math.lgamma(self.alpha)
            - math.lgamma(self.beta)
        )

    def mean(self) -> float:
        return self.n * self.alpha / (self.alpha + self.beta)

    def variance(self) -> float:
        a, b, n = self.alpha, self.beta, self.n
        return n * a * b * (a + b + n) / ((a + b) ** 2 * (a + b + 1.0))

    def __repr__(self) -> str:
        return f"BetaBinomialMarginal(n={self.n}, a={self.alpha:.4g}, b={self.beta:.4g})"


class GammaPoisson(ConditionalDist):
    """``x | lam ~ Poisson(lam)`` with a Gamma(shape, rate) parent."""

    parent_family = "gamma"
    child_family = "poisson"
    __slots__ = ()

    def marginalize(self, parent_marginal: Gamma) -> Distribution:
        _check(parent_marginal, Gamma, "GammaPoisson")
        return _NegativeBinomialMarginal(parent_marginal.shape, parent_marginal.rate)

    def posterior(self, parent_marginal: Gamma, value) -> Gamma:
        _check(parent_marginal, Gamma, "GammaPoisson")
        return Gamma(parent_marginal.shape + int(value), parent_marginal.rate + 1.0)

    def at_parent_value(self, parent_value: float) -> Poisson:
        return Poisson(float(parent_value))

    def __repr__(self) -> str:
        return "GammaPoisson()"


class _NegativeBinomialMarginal(Distribution):
    """Gamma-Poisson compound (negative binomial) marginal."""

    __slots__ = ("shape", "rate")

    def __init__(self, shape: float, rate: float):
        self.shape = float(shape)
        self.rate = float(rate)

    def sample(self, rng: np.random.Generator) -> int:
        lam = rng.gamma(self.shape, 1.0 / self.rate)
        return int(rng.poisson(lam))

    def log_pdf(self, value) -> float:
        import math

        k = int(value)
        if k < 0:
            return -math.inf
        r = self.shape
        p = self.rate / (self.rate + 1.0)  # success prob of the NB
        return (
            math.lgamma(k + r)
            - math.lgamma(r)
            - math.lgamma(k + 1)
            + r * math.log(p)
            + k * math.log(1.0 - p)
        )

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        return self.shape * (self.rate + 1.0) / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"NegativeBinomialMarginal(r={self.shape:.4g}, rate={self.rate:.4g})"


class DirichletCategorical(ConditionalDist):
    """``x | p ~ Categorical(p)`` with a Dirichlet parent."""

    parent_family = "dirichlet"
    child_family = "categorical"
    __slots__ = ()

    def marginalize(self, parent_marginal: Dirichlet) -> Categorical:
        _check(parent_marginal, Dirichlet, "DirichletCategorical")
        return Categorical(parent_marginal.mean())

    def posterior(self, parent_marginal: Dirichlet, value) -> Dirichlet:
        _check(parent_marginal, Dirichlet, "DirichletCategorical")
        return parent_marginal.with_count(int(value))

    def at_parent_value(self, parent_value) -> Categorical:
        return Categorical(np.asarray(parent_value, dtype=float))

    def __repr__(self) -> str:
        return "DirichletCategorical()"


class GaussianUnknownVariance(ConditionalDist):
    """``x | sigma2 ~ N(mu, sigma2)`` with an InverseGamma parent.

    Marginal: location-scale Student-t with ``2*shape`` degrees of
    freedom. Posterior: ``InverseGamma(shape + 1/2, scale + (x-mu)^2/2)``.
    An extension beyond the paper's evaluated conjugacies; lets models
    learn observation noise from a stream.
    """

    parent_family = "inverse_gamma"
    child_family = "gaussian"
    __slots__ = ("mu",)

    def __init__(self, mu: float):
        self.mu = float(mu)

    def marginalize(self, parent_marginal) -> Distribution:
        from repro.dists import InverseGamma, StudentT

        _check(parent_marginal, InverseGamma, "GaussianUnknownVariance")
        shape, scale = parent_marginal.shape, parent_marginal.scale
        return StudentT(
            df=2.0 * shape,
            loc=self.mu,
            scale=float(np.sqrt(scale / shape)),
        )

    def posterior(self, parent_marginal, value):
        from repro.dists import InverseGamma

        _check(parent_marginal, InverseGamma, "GaussianUnknownVariance")
        residual = float(value) - self.mu
        return parent_marginal.with_observation_sq(residual * residual)

    def at_parent_value(self, parent_value: float) -> Gaussian:
        return Gaussian(self.mu, float(parent_value))

    def __repr__(self) -> str:
        return f"GaussianUnknownVariance(mu={self.mu:.4g})"


def _check(marginal: Distribution, expected: type, who: str) -> None:
    if not isinstance(marginal, expected):
        raise GraphError(
            f"{who} expects a {expected.__name__} parent marginal, "
            f"got {type(marginal).__name__}"
        )
