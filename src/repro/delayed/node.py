"""Graph nodes for delayed sampling.

A node represents one random variable and is always in one of three
states (Section 5.2 of the paper):

* **initialized** — carries a conditional distribution ``p(x | parent)``
  whose parent has not been realized,
* **marginalized** — carries a marginal distribution ``p(x)`` that
  incorporates the distributions of its ancestors (and, as observations
  arrive, conditioning information),
* **realized** — carries a concrete value, assigned by sampling or by
  observation.

State changes are monotone: initialized -> marginalized -> realized.
Which pointer fields a node *retains* in each state is the difference
between the original delayed-sampling graph and the paper's
pointer-minimal streaming implementation; the nodes themselves are
shared and the two graph classes manage the fields.
"""

from __future__ import annotations

import enum
import itertools
from typing import Any, List, Optional

from repro.delayed.conjugacy import ConditionalDist
from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Dirichlet,
    Distribution,
    Gamma,
    Gaussian,
    InverseGamma,
    MvGaussian,
    Poisson,
)

__all__ = ["NodeState", "DSNode", "family_of_dist"]

_uid_counter = itertools.count()


class NodeState(enum.Enum):
    """Lifecycle state of a delayed-sampling node."""

    INITIALIZED = "initialized"
    MARGINALIZED = "marginalized"
    REALIZED = "realized"


_FAMILY_BY_TYPE = {
    Gaussian: "gaussian",
    MvGaussian: "mv_gaussian",
    Beta: "beta",
    Bernoulli: "bernoulli",
    Gamma: "gamma",
    Poisson: "poisson",
    Dirichlet: "dirichlet",
    Categorical: "categorical",
    InverseGamma: "inverse_gamma",
}


def family_of_dist(dist: Distribution) -> str:
    """Conjugacy family tag of a concrete distribution (or "opaque")."""
    return _FAMILY_BY_TYPE.get(type(dist), "opaque")


class DSNode:
    """One random variable in a delayed-sampling graph.

    Fields (not all populated in all states / graph flavors):

    * ``parent`` — backward pointer to the parent node,
    * ``children`` — forward pointers to child nodes,
    * ``marginal_child`` — the unique marginalized child (M-path edge),
    * ``cdistr`` — conditional ``p(self | parent)``; retained after
      realization because the *parent's* (possibly deferred) conditioning
      reads it,
    * ``marginal`` — current marginal when marginalized,
    * ``value`` — concrete value when realized,
    * ``folded`` — set once a realized node's evidence has been absorbed
      into its parent's marginal (used by deferred conditioning).
    """

    __slots__ = (
        "uid",
        "name",
        "state",
        "family",
        "parent",
        "children",
        "marginal_child",
        "cdistr",
        "marginal",
        "value",
        "folded",
        "snapshot_cache",
    )

    def __init__(
        self,
        state: NodeState,
        family: str,
        parent: Optional["DSNode"] = None,
        cdistr: Optional[ConditionalDist] = None,
        marginal: Optional[Distribution] = None,
        name: str = "",
    ):
        self.uid = next(_uid_counter)
        self.name = name
        self.state = state
        self.family = family
        self.parent = parent
        self.children: List[DSNode] = []
        self.marginal_child: Optional[DSNode] = None
        self.cdistr = cdistr
        self.marginal = marginal
        self.value: Any = None
        self.folded = False
        #: memoized Dirac snapshot of a realized node (the value never
        #: changes after realization, so the lift can reuse one object).
        self.snapshot_cache: Any = None

    @property
    def dim(self) -> Optional[int]:
        """Dimension of a vector-valued node (None for scalars).

        Used by the affine analysis to build one-hot projections for
        ``x[i]`` expressions on multivariate Gaussian variables.
        """
        if isinstance(self.marginal, MvGaussian):
            return self.marginal.dim
        cdistr = self.cdistr
        if cdistr is not None and getattr(cdistr, "a", None) is not None:
            a = getattr(cdistr, "a")
            if hasattr(a, "shape") and getattr(a, "ndim", 0) == 2:
                return a.shape[0]
        return None

    def memory_words(self) -> int:
        """Approximate heap footprint in abstract words.

        Counts the node header plus the payload distributions it keeps
        alive; pointer fields are counted by the graph traversal.
        """
        words = 8
        if self.marginal is not None:
            words += self.marginal.memory_words()
        if self.cdistr is not None:
            words += 4
        if self.value is not None:
            words += 1
        return words

    def __repr__(self) -> str:
        label = self.name or f"#{self.uid}"
        if self.state is NodeState.REALIZED:
            return f"DSNode({label}, realized={self.value!r})"
        if self.state is NodeState.MARGINALIZED:
            return f"DSNode({label}, marginalized={self.marginal!r})"
        return f"DSNode({label}, initialized, cdistr={self.cdistr!r})"
