"""``replint`` — the command-line linter over the static analysis.

::

    replint examples/*.py models/*.zls          # lint files
    replint --bench-models                      # lint registered bench models
    replint --format=json --output report.json  # machine-readable output

Exit status is 1 when any *error*-severity diagnostic is found (REP001
unbounded memory, REP007 unguarded last, REP009 symbolic branch), and
0 otherwise — warnings never fail the run unless ``--strict`` is given.

Also runnable as ``python -m repro.analysis``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.lint import lint_report
from repro.analysis.report import Diagnostic

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="replint",
        description=(
            "Ahead-of-time lint for probabilistic stream programs: "
            "bounded-memory and batchability verdicts plus per-site "
            "diagnostics, without executing the model."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help=".zls surface programs, or .py files with embedded "
        "surface-program string literals (parsed, never executed)",
    )
    parser.add_argument(
        "--bench-models",
        action="store_true",
        help="also analyze every registered benchmark model",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        default=None,
        help="write the report to FILE instead of stdout",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="treat warnings as errors for the exit status",
    )
    return parser


def _render_text(report: dict) -> str:
    lines: List[str] = []
    for entry in report["files"]:
        for d in entry["diagnostics"]:
            lines.append(_format_dict_diag(d))
    for entry in report["bench_models"]:
        header = f"{entry['model']}: verdict={entry['verdict']}"
        if entry["conclusive"]:
            header += (
                f" families={{{', '.join(entry['families'])}}}"
                f" shape={entry['shape']} forced={entry['forced']}"
            )
        elif entry["reason"]:
            header += f" ({entry['reason']})"
        lines.append(header)
        for d in entry["diagnostics"]:
            lines.append("  " + _format_dict_diag(d))
    summary = report["summary"]
    lines.append(
        f"replint: {summary['errors']} error(s), "
        f"{summary['warnings']} warning(s)"
    )
    return "\n".join(lines)


def _format_dict_diag(d: dict) -> str:
    site_parts = []
    if d.get("file"):
        site_parts.append(f"{d['file']}:{d['line']}" if d.get("line") else d["file"])
    elif d.get("line"):
        site_parts.append(f"line {d['line']}")
    if d.get("name"):
        site_parts.append(d["name"])
    where = " ".join(site_parts)
    prefix = f"{where}: " if where else ""
    return f"{prefix}{d['severity']} {d['code']} [{d['slug']}] {d['message']}"


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if not args.paths and not args.bench_models:
        build_parser().print_usage(sys.stderr)
        print("replint: nothing to lint (give paths or --bench-models)", file=sys.stderr)
        return 2

    try:
        report = lint_report(paths=args.paths, bench_models=args.bench_models)
    except OSError as exc:
        print(f"replint: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        text = json.dumps(report, indent=2, sort_keys=True)
    else:
        text = _render_text(report)

    if args.output:
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
    else:
        print(text)

    if report["summary"]["errors"]:
        return 1
    if args.strict and report["summary"]["warnings"]:
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
