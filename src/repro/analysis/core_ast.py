"""Ahead-of-time analysis of kernel-AST programs and muF terms.

The second frontend of :mod:`repro.analysis`: where
:mod:`repro.analysis.absint` sees Python ``step`` functions, this
module sees the compiled representations of the surface language —
:class:`~repro.core.ast.Program` after the Section-3.1 rewrites
(``prepare_program``: expand automata, desugar ``->``/``pre``/``fby``,
schedule, check), and :class:`~repro.core.muf.MuFProgram` terms.

The abstract interpretation mirrors the Python frontend exactly and
reuses its value lattice and edge classifier: equations are evaluated
in scheduled order, ``last x`` reads a carried state slot, and the
abstract instant is iterated until the state structure stabilizes.
The ``->``-rewrite's ``if last fst then e1 else e2`` resolves
concretely (``fst`` is a real boolean in the abstract state), so the
first and steady instants fall out naturally.

Surface-level lints with no Python analogue live here:

* ``REP006`` unreachable ``init`` — an ``init x = c`` whose ``last x``
  is never read (the initialization value is dead);
* ``REP007`` unguarded ``last`` — ``last x`` with no ``init x`` in
  scope (normally rejected by ``check_initialization``; reported as a
  diagnostic when linting unprepared programs).

For muF terms (:func:`analyze_muf_term`) only a light structural taint
pass is provided: sample-derived values flowing into an ``MIf``
condition are lockstep violations, and families are collected from
``MOp`` names — enough for linting hand-written terms, with
``conclusive=False`` so routing never trusts it over the probe.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from repro.analysis.absint import (
    MAX_ABSTRACT_STEPS,
    AbsConst,
    AbsDerived,
    AbsDist,
    AbsInput,
    AbsRV,
    AbsTuple,
    AbsVal,
    Affine,
    Inconclusive,
    _affine_of,
    _derived,
    _flag,
    _is_concrete,
    _concrete,
    _rvs,
    _Node,
    _StepRecord,
    classify_dist_edge,
    make_rv,
)
from repro.analysis.report import (
    DANGLING_RV,
    LOCKSTEP_BRANCH,
    NONCONJUGATE_EDGE,
    NONBATCHABLE_FAMILY,
    SYMBOLIC_BRANCH,
    UNBOUNDED_MEMORY,
    UNREACHABLE_INIT,
    UNGUARDED_LAST,
    UNUSED_OBSERVE,
    Diagnostic,
    EdgeInfo,
    ModelAnalysis,
    RVNode,
    Site,
    StepGraph,
    make_diagnostic,
)
from repro.core.ast import (
    App,
    Const,
    Eq,
    Expr,
    Factor,
    Infer,
    InitEq,
    Last,
    NodeDecl,
    Observe,
    Op,
    Pair,
    Present,
    Program,
    Reset,
    Sample,
    Var,
    Where,
)

__all__ = [
    "analyze_node",
    "analyze_program",
    "analyze_muf_term",
    "is_probabilistic",
    "lint_program",
]

#: surface operators that build distribution terms
DIST_OPS = {
    "gaussian",
    "mv_gaussian",
    "beta",
    "bernoulli",
    "binomial",
    "gamma",
    "poisson",
    "dirichlet",
    "categorical",
    "exponential",
    "uniform",
    "delta",
}

#: symbolically lifted operators (repro.core.ops) with affine tracking
_ARITH = {"add", "sub", "mul", "div", "neg", "matvec", "getitem"}

#: concrete-only comparisons — raise on symbolic operands at runtime
_CMP = {"gt", "lt", "ge", "le", "eq", "ne", "and", "or", "not"}

_MAX_INLINE_DEPTH = 4


def _walk(expr: Expr, skip_infer: bool = False):
    yield expr
    if skip_infer and isinstance(expr, Infer):
        return
    from repro.core.scheduling import _children

    for child in _children(expr):
        yield from _walk(child, skip_infer)
    if isinstance(expr, Where):
        for eq in expr.equations:
            if isinstance(eq, Eq):
                yield from _walk(eq.expr, skip_infer)


def is_probabilistic(decl: NodeDecl, program: Program, _seen: Optional[Set[str]] = None) -> bool:
    """Does the node (or a node it applies) sample, observe, or factor?

    Probabilistic effects under ``infer`` do not count: a driver that
    *runs* an inference engine is itself deterministic (kind D).
    """
    if _seen is None:
        _seen = set()
    if decl.name in _seen:
        return False
    _seen.add(decl.name)
    for sub in _walk(decl.body, skip_infer=True):
        if isinstance(sub, (Sample, Observe, Factor)):
            return True
        if isinstance(sub, App):
            try:
                callee = program.decl(sub.func)
            except KeyError:
                continue
            if is_probabilistic(callee, program, _seen):
                return True
    return False


class _NodeAnalyzer:
    """Abstractly interpret one prepared node declaration."""

    def __init__(self, program: Program, decl: NodeDecl, file: str = ""):
        self.program = program
        self.decl = decl
        self.file = file
        self.uid_counter = 0
        self.diagnostics: List[Diagnostic] = []
        self._diag_keys: Set[Tuple] = set()
        self.batchable_ok = True
        self.carried_nodes: Dict[int, _Node] = {}
        #: persistent slot store across instants: key -> abstract value
        self.state: Dict[str, AbsVal] = {}
        #: keys whose ``last`` was actually read at least once
        self.last_read: Set[str] = set()
        #: init sites for the unreachable-init lint: key -> human name
        self.init_names: Dict[str, str] = {}
        #: widening of churning constant slots (counters like
        #: ``t = 1. -> pre t + 1.``): consecutive-change counts and the
        #: keys already widened to an opaque non-random value.
        self._const_changes: Dict[str, int] = {}
        self._widened: Set[str] = set()

    # -- plumbing ------------------------------------------------------

    def site(self, name: str = "") -> Site:
        label = f"{self.decl.name}" + (f".{name}" if name else "")
        return Site(name=label, file=self.file, line=0)

    def next_uid(self) -> int:
        self.uid_counter += 1
        return self.uid_counter

    def add_diag(self, diag: Diagnostic) -> None:
        key = (diag.code, str(diag.site), diag.message)
        if key not in self._diag_keys:
            self._diag_keys.add(key)
            self.diagnostics.append(diag)

    # -- one abstract instant ------------------------------------------

    def run_step(self) -> Tuple[AbsVal, _StepRecord, Dict[str, AbsVal]]:
        record = _StepRecord()
        for uid, node in self.carried_nodes.items():
            record.nodes[uid] = node
        next_state: Dict[str, AbsVal] = {}
        env = {p: AbsInput(path=p) for p in self.decl.param}
        out = self.eval(self.decl.body, env, record, next_state, scope="", depth=0)
        return out, record, next_state

    # -- expression evaluation -----------------------------------------

    def eval(
        self,
        expr: Expr,
        env: Dict[str, AbsVal],
        record: _StepRecord,
        next_state: Dict[str, AbsVal],
        scope: str,
        depth: int,
    ) -> AbsVal:
        if isinstance(expr, Const):
            return AbsConst(expr.value)
        if isinstance(expr, Var):
            if expr.name in env:
                return env[expr.name]
            raise Inconclusive(f"unbound variable {expr.name!r} in {self.decl.name}")
        if isinstance(expr, Pair):
            return AbsTuple(
                (
                    self.eval(expr.first, env, record, next_state, scope, depth),
                    self.eval(expr.second, env, record, next_state, scope, depth),
                )
            )
        if isinstance(expr, Last):
            key = f"{scope}{expr.name}"
            self.last_read.add(key)
            if key not in self.state:
                self.add_diag(
                    make_diagnostic(
                        UNGUARDED_LAST,
                        f"last {expr.name!r} has no init equation in scope",
                        self.site(expr.name),
                    )
                )
                raise Inconclusive(f"unguarded last {expr.name!r}")
            return self.state[key]
        if isinstance(expr, Where):
            return self.eval_where(expr, env, record, next_state, scope, depth)
        if isinstance(expr, Op):
            return self.eval_op(expr, env, record, next_state, scope, depth)
        if isinstance(expr, Sample):
            dist = self.eval(expr.dist, env, record, next_state, scope, depth)
            if not isinstance(dist, AbsDist):
                raise Inconclusive(
                    f"sample of a non-distribution term in {self.decl.name}"
                )
            rv = make_rv(
                record, self.next_uid(), dist.family, dist.params,
                self.site(), observe=False,
            )
            self.link(rv, dist, record)
            return AbsRV(rv.uid)
        if isinstance(expr, Observe):
            dist = self.eval(expr.dist, env, record, next_state, scope, depth)
            self.eval(expr.value, env, record, next_state, scope, depth)
            if not isinstance(dist, AbsDist):
                raise Inconclusive(
                    f"observe of a non-distribution term in {self.decl.name}"
                )
            rv = make_rv(
                record, self.next_uid(), dist.family, dist.params,
                self.site(), observe=True,
            )
            rv.observed = True
            rv.realized = True
            self.link(rv, dist, record)
            if not rv.parents:
                self.add_diag(
                    make_diagnostic(
                        UNUSED_OBSERVE,
                        f"observe({dist.family}(...)) conditions no latent "
                        "variable — every particle receives the same weight",
                        self.site(),
                    )
                )
            return AbsConst(())
        if isinstance(expr, Factor):
            self.eval(expr.score, env, record, next_state, scope, depth)
            return AbsConst(())
        if isinstance(expr, Infer):
            # a nested inference engine: its result is a concrete
            # distribution object, opaque to this analysis.
            return _derived()
        if isinstance(expr, App):
            return self.eval_app(expr, env, record, next_state, scope, depth)
        if isinstance(expr, Present):
            return self.eval_branch(
                expr.cond, expr.then_branch, expr.else_branch,
                env, record, next_state, scope, depth,
            )
        if isinstance(expr, Reset):
            # reset re-initializes state when the clock ticks; for the
            # steady-state graph the body's dataflow is what matters.
            self.eval(expr.every, env, record, next_state, scope, depth)
            return self.eval(expr.body, env, record, next_state, scope, depth)
        raise Inconclusive(
            f"unsupported kernel construct {type(expr).__name__} in {self.decl.name}"
        )

    def eval_where(self, expr, env, record, next_state, scope, depth):
        local = dict(env)
        inits = [eq for eq in expr.equations if isinstance(eq, InitEq)]
        defs = [eq for eq in expr.equations if isinstance(eq, Eq)]
        for init_eq in inits:
            key = f"{scope}{init_eq.name}"
            self.init_names.setdefault(key, init_eq.name)
            if key not in self.state:
                self.state[key] = AbsConst(init_eq.value.value)
        for eq in defs:
            value = self.eval(eq.expr, local, record, next_state, scope, depth)
            if isinstance(value, AbsRV):
                rv = record.nodes.get(value.uid)
                if rv is not None and rv.default_name and not eq.name.startswith("_"):
                    rv.name = eq.name
                    rv.default_name = False
            local[eq.name] = value
        for init_eq in inits:
            key = f"{scope}{init_eq.name}"
            if init_eq.name in local:
                next_state[key] = local[init_eq.name]
            else:
                next_state[key] = self.state[key]
        return self.eval(expr.body, local, record, next_state, scope, depth)

    def eval_app(self, expr, env, record, next_state, scope, depth):
        if depth >= _MAX_INLINE_DEPTH:
            raise Inconclusive(
                f"node application nesting exceeds {_MAX_INLINE_DEPTH} "
                f"({self.decl.name} -> {expr.func})"
            )
        try:
            callee = self.program.decl(expr.func)
        except KeyError:
            raise Inconclusive(f"application of unknown node {expr.func!r}")
        arg = self.eval(expr.arg, env, record, next_state, scope, depth)
        inner_env: Dict[str, AbsVal] = {}
        if len(callee.param) == 1:
            inner_env[callee.param[0]] = arg
        elif isinstance(arg, AbsTuple) and len(arg.elems) == len(callee.param):
            for p, v in zip(callee.param, arg.elems):
                inner_env[p] = v
        elif isinstance(arg, AbsInput):
            for i, p in enumerate(callee.param):
                inner_env[p] = AbsInput(path=f"{arg.path}[{i}]")
        else:
            for p in callee.param:
                inner_env[p] = _derived(arg)
        inner_scope = f"{scope}{expr.func}#{id(expr) % 100000}."
        return self.eval(
            callee.body, inner_env, record, next_state, inner_scope, depth + 1
        )

    def eval_op(self, expr, env, record, next_state, scope, depth):
        name = expr.name
        if name == "if":
            return self.eval_branch(
                expr.args[0], expr.args[1], expr.args[2],
                env, record, next_state, scope, depth,
            )
        args = [
            self.eval(a, env, record, next_state, scope, depth) for a in expr.args
        ]
        if name in DIST_OPS:
            return AbsDist(name, tuple(args))
        if all(_is_concrete(a) for a in args):
            from repro.core.ops import apply_op

            try:
                return AbsConst(apply_op(name, tuple(_concrete(a) for a in args)))
            except Exception:
                return _derived(*args)
        if name in _ARITH:
            return self._arith(name, args, record)
        if name in _CMP:
            # concrete-only at runtime: symbolic operands raise under
            # every delayed sampler.
            if any(_rvs(a) for a in args):
                self.add_diag(
                    make_diagnostic(
                        SYMBOLIC_BRANCH,
                        f"comparison {name!r} on a symbolic value — raises "
                        "under every delayed sampler; sample eagerly or "
                        "restructure",
                        self.site(),
                    )
                )
                self.batchable_ok = False
            return _derived(*args)
        return _derived(*args)

    def _arith(self, name: str, args: List[AbsVal], record: _StepRecord) -> AbsVal:
        affine = None
        if name in ("add", "sub") and len(args) == 2:
            a, b = args
            if _rvs(a) and not _rvs(b):
                affine = _affine_of(a)
            elif _rvs(b) and not _rvs(a):
                affine = _affine_of(b)
        elif name in ("mul", "div") and len(args) == 2:
            a, b = args
            aff = None
            if _rvs(a) and not _rvs(b):
                aff = _affine_of(a)
            elif _rvs(b) and not _rvs(a) and name == "mul":
                aff = _affine_of(b)
            if aff is not None:
                affine = Affine(aff.uid, aff.kind)
        elif name == "neg" and len(args) == 1:
            affine = _affine_of(args[0])
        elif name == "matvec" and len(args) == 2:
            aff = _affine_of(args[1])
            if aff is not None:
                affine = Affine(aff.uid, "mv")
        elif name == "getitem" and len(args) == 2:
            base = args[0]
            if isinstance(base, AbsRV):
                node = record.nodes.get(base.uid) or self.carried_nodes.get(base.uid)
                if node is not None and node.family == "mv_gaussian":
                    affine = Affine(base.uid, "projection")
        return _derived(*args, affine=affine)

    def eval_branch(self, cond_e, then_e, else_e, env, record, next_state, scope, depth):
        cond = self.eval(cond_e, env, record, next_state, scope, depth)
        if _is_concrete(cond):
            return self.eval(
                then_e if bool(_concrete(cond)) else else_e,
                env, record, next_state, scope, depth,
            )
        if _rvs(cond):
            self.add_diag(
                make_diagnostic(
                    SYMBOLIC_BRANCH,
                    "control flow branches on a symbolic value — raises "
                    "under every delayed sampler",
                    self.site(),
                )
            )
            self.batchable_ok = False
        elif _flag(cond, "forced"):
            self.add_diag(
                make_diagnostic(
                    LOCKSTEP_BRANCH,
                    "control flow branches on a per-particle value — the "
                    "batched backend cannot run this in lockstep",
                    self.site(),
                )
            )
            self.batchable_ok = False
        # analyze both arms against snapshots and merge
        roots_before = record.roots
        state_before = dict(next_state)
        then_v = self.eval(then_e, env, record, next_state, scope, depth)
        then_state = dict(next_state)
        then_roots = record.roots
        next_state.clear()
        next_state.update(state_before)
        record.roots = roots_before
        else_v = self.eval(else_e, env, record, next_state, scope, depth)
        else_roots = record.roots
        record.roots = roots_before + max(
            then_roots - roots_before, else_roots - roots_before
        )
        for key, val in then_state.items():
            if key in next_state and next_state[key] != val:
                next_state[key] = self._merge(next_state[key], val)
            else:
                next_state.setdefault(key, val)
        return self._merge(then_v, else_v)

    def _merge(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a == b:
            return a
        if isinstance(a, AbsTuple) and isinstance(b, AbsTuple) and len(a.elems) == len(b.elems):
            return AbsTuple(tuple(self._merge(x, y) for x, y in zip(a.elems, b.elems)))
        return _derived(a, b)

    def link(self, rv: _Node, dist: AbsDist, record: _StepRecord) -> None:
        if not rv.parents:
            return
        kind, conjugate = classify_dist_edge(record, dist)
        parent_names = ",".join(
            record.nodes[p].name if p in record.nodes else str(p)
            for p in rv.parents
        )
        edge = EdgeInfo(
            parent=parent_names, child=rv.name, kind=kind,
            conjugate=conjugate, site=rv.site,
        )
        record.edges.append(edge)
        if not conjugate:
            record.realize_sites.append(edge)
            for p in rv.parents:
                if p in record.nodes:
                    record.nodes[p].realized = True
            record.forced += len(rv.parents)
            self.add_diag(
                make_diagnostic(
                    NONCONJUGATE_EDGE,
                    f"non-conjugate dependence of {rv.family}({parent_names}) "
                    "— the delayed sampler realizes the parent here (one "
                    "forced realization per parent per instant)",
                    rv.site,
                )
            )

    # -- full analysis --------------------------------------------------

    def _signature(self) -> Tuple:
        sig = []
        for key in sorted(self.state):
            val = self.state[key]
            if _rvs(val):
                sig.append((key, "rv"))
            elif isinstance(val, AbsConst):
                sig.append((key, "const", repr(val.value)))
            elif _flag(val, "inputy"):
                sig.append((key, "input"))
            else:
                sig.append((key, "derived"))
        return tuple(sig)

    def _carry(self, next_state: Dict[str, AbsVal], record: _StepRecord) -> Dict[str, int]:
        """Swap RVs flowing into state for carried markers (next instant)."""
        new_state: Dict[str, AbsVal] = {}
        slot_uids: Dict[str, int] = {}
        for key, val in next_state.items():
            bases = _rvs(val)
            if not bases:
                # widen constant slots that change on consecutive
                # instants (step counters, accumulators): one change is
                # normal first-instant behaviour (the `->` guard), a
                # second means the value churns forever.
                if key in self._widened:
                    new_state[key] = AbsDerived() if isinstance(val, AbsConst) else val
                    continue
                prev = self.state.get(key)
                if (
                    isinstance(val, AbsConst)
                    and isinstance(prev, AbsConst)
                    and repr(prev.value) != repr(val.value)
                ):
                    self._const_changes[key] = self._const_changes.get(key, 0) + 1
                    if self._const_changes[key] >= 2:
                        self._widened.add(key)
                        new_state[key] = AbsDerived()
                        continue
                new_state[key] = val
                continue
            family = ""
            for uid in sorted(bases):
                src = record.nodes.get(uid)
                if src is not None:
                    family = src.family
                    break
            uid = self.next_uid()
            marker = _Node(
                uid=uid,
                name=self.init_names.get(key, key),
                family=family,
                kind="carried",
                root=False,
                site=self.site(self.init_names.get(key, key)),
                slot=(hash(key) % (1 << 30),),
                default_name=False,
            )
            self.carried_nodes[uid] = marker
            slot_uids[key] = uid
            if isinstance(val, AbsRV):
                new_state[key] = AbsRV(uid)
            else:
                new_state[key] = AbsDerived(
                    rvs=frozenset((uid,)),
                    forced=_flag(val, "forced"),
                    inputy=_flag(val, "inputy"),
                )
        self.state = new_state
        return slot_uids

    def analyze(self) -> ModelAnalysis:
        from repro.delayed.detect import BATCHABLE_FAMILIES

        families: Set[str] = set()
        max_roots = 0
        prev_sig = None
        slot_uids: Dict[str, int] = {}
        anc: Dict[str, Set[str]] = {}
        steady: Optional[Tuple[_StepRecord, Dict[str, AbsVal], Dict[str, int]]] = None

        for _ in range(MAX_ABSTRACT_STEPS):
            _, record, next_state = self.run_step()
            families |= record.families
            max_roots = max(max_roots, record.roots)

            uid_to_key = {uid: key for key, uid in slot_uids.items()}
            fresh_to_key: Dict[int, str] = {}
            for key, val in next_state.items():
                for uid in _rvs(val):
                    if uid in record.nodes and record.nodes[uid].kind != "carried":
                        fresh_to_key.setdefault(uid, key)
            new_anc: Dict[str, Set[str]] = {}
            for key, val in next_state.items():
                acc: Set[str] = set()
                for uid in _rvs(val):
                    if uid in uid_to_key:
                        src = uid_to_key[uid]
                        acc |= {src} | anc.get(src, set())
                    elif uid in record.nodes:
                        for carried_uid_key in self._carried_anc(record, uid, uid_to_key):
                            acc |= {carried_uid_key} | anc.get(carried_uid_key, set())
                        for parent_uid in record.nodes[uid].parents:
                            pkey = fresh_to_key.get(parent_uid)
                            if pkey is not None and pkey != key:
                                acc.add(pkey)
                new_anc[key] = acc
            anc = new_anc

            sig_next = []
            for key in sorted(next_state):
                val = next_state[key]
                if _rvs(val):
                    sig_next.append((key, "rv"))
                elif isinstance(val, AbsConst):
                    sig_next.append((key, "const", repr(val.value)))
                elif _flag(val, "inputy"):
                    sig_next.append((key, "input"))
                else:
                    sig_next.append((key, "derived"))
            sig = tuple(sig_next)
            if sig == prev_sig:
                steady = (record, next_state, dict(slot_uids))
                break
            prev_sig = sig
            slot_uids = self._carry(next_state, record)
        else:
            raise Inconclusive(
                f"state structure of {self.decl.name!r} did not stabilize "
                f"within {MAX_ABSTRACT_STEPS} instants"
            )

        record, next_state, slot_uids = steady
        bounded = self._check_bounded(record, next_state, slot_uids, anc)
        self._lint_unreachable_inits()

        for family in sorted(families - BATCHABLE_FAMILIES):
            self.add_diag(
                make_diagnostic(
                    NONBATCHABLE_FAMILY,
                    f"family {family!r} has no batched kernels",
                    self.site(),
                )
            )
        batchable = self.batchable_ok and bool(families) and families <= BATCHABLE_FAMILIES
        shape = "tree" if max_roots >= 2 else "chain"
        nodes = tuple(
            RVNode(n.uid, n.name, n.family, n.kind, n.root, n.site)
            for n in record.nodes.values()
        )
        graph = StepGraph(
            nodes=nodes,
            edges=tuple(record.edges),
            observed=tuple(u for u, n in record.nodes.items() if n.observed),
            realized=tuple(u for u, n in record.nodes.items() if n.realized),
            sample_roots=max_roots,
        )
        return ModelAnalysis(
            conclusive=True,
            batchable=batchable,
            bounded=bounded,
            families=frozenset(families),
            shape=shape,
            forced=record.forced,
            step_graph=graph,
            realize_sites=tuple(record.realize_sites),
            diagnostics=tuple(self.diagnostics),
            name=self.decl.name,
        )

    def _carried_anc(self, record: _StepRecord, uid: int, uid_to_key: Dict[int, str]):
        """Keys of carried markers among a fresh node's in-step ancestors."""
        out: Set[str] = set()
        seen: Set[int] = set()
        stack = [uid]
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in record.nodes:
                continue
            seen.add(cur)
            node = record.nodes[cur]
            if node.kind == "carried" and cur != uid:
                if cur in uid_to_key:
                    out.add(uid_to_key[cur])
                continue
            stack.extend(node.parents)
        return out

    def _check_bounded(
        self,
        record: _StepRecord,
        next_state: Dict[str, AbsVal],
        slot_uids: Dict[str, int],
        anc: Dict[str, Set[str]],
    ) -> bool:
        uid_to_key = {uid: key for key, uid in slot_uids.items()}
        succ: Dict[str, Set[str]] = {}
        chain_keys: Set[str] = set()
        for key, val in next_state.items():
            for uid in _rvs(val):
                if uid in uid_to_key:
                    succ.setdefault(uid_to_key[uid], set()).add(key)
                elif uid in record.nodes and record.nodes[uid].kind != "carried":
                    chain_keys.add(key)

        def slot_consumed(key: str) -> bool:
            uid = slot_uids.get(key)
            return uid is not None and record.consumed(uid)

        def eventually_consumed(start: Set[str]) -> bool:
            seen: Set[str] = set()
            frontier = set(start)
            while frontier:
                frontier -= seen
                if not frontier:
                    break
                if any(slot_consumed(k) for k in frontier):
                    return True
                seen |= frontier
                nxt: Set[str] = set()
                for k in frontier:
                    nxt |= succ.get(k, set())
                frontier = nxt
            return False

        bounded = True
        for uid, node in record.nodes.items():
            if node.kind != "sample" or record.consumed(uid):
                continue
            dest = {k for k, v in next_state.items() if uid in _rvs(v)}
            if not dest:
                self.add_diag(
                    make_diagnostic(
                        DANGLING_RV,
                        f"sampled variable {node.name!r} is never observed, "
                        "realized, or carried — a dead draw",
                        node.site,
                    )
                )
                continue
            if not eventually_consumed(dest):
                bounded = False
                names = ", ".join(self.init_names.get(k, k) for k in sorted(dest))
                self.add_diag(
                    make_diagnostic(
                        UNBOUNDED_MEMORY,
                        f"sampled variable {node.name!r} is never observed or "
                        f"realized on the {names} step edge — the "
                        "delayed-sampling graph grows by one node per instant",
                        node.site,
                    )
                )
        for key, uid in slot_uids.items():
            if key not in succ:
                continue
            if slot_consumed(key) or eventually_consumed({key}):
                continue
            anchored = [q for q in chain_keys if key in anc.get(q, set())]
            var = self.init_names.get(key, key)
            if anchored:
                bounded = False
                chain_desc = ", ".join(self.init_names.get(q, q) for q in anchored)
                self.add_diag(
                    make_diagnostic(
                        UNBOUNDED_MEMORY,
                        f"variable {var!r} is kept in the stream state but "
                        "never observed or realized, and it anchors the "
                        f"history of the growing chain ({chain_desc}) — the "
                        "hmm_init pathology of Section 5.3",
                        self.site(var),
                    )
                )
            else:
                self.add_diag(
                    make_diagnostic(
                        DANGLING_RV,
                        f"variable {var!r} is kept in the stream state forever "
                        "but never observed or realized",
                        self.site(var),
                    )
                )
        return bounded

    def _lint_unreachable_inits(self) -> None:
        for key, human in self.init_names.items():
            # rewrite-generated guards (fst/pre temporaries) are owned by
            # the compiler, not the program author.
            if human.startswith("_"):
                continue
            if key not in self.last_read:
                self.add_diag(
                    make_diagnostic(
                        UNREACHABLE_INIT,
                        f"init {human!r} is dead: last {human!r} is never "
                        "read, so the initialization value is unreachable",
                        self.site(human),
                    )
                )


def analyze_node(
    program: Program, name: str, file: str = "", prepared: bool = False
) -> ModelAnalysis:
    """Analyze one node of a surface/kernel program.

    ``program`` may be raw surface syntax (the default — it is prepared
    with :func:`~repro.core.compiler.prepare_program` first) or already
    prepared (``prepared=True``).
    """
    try:
        if not prepared:
            from repro.core.compiler import prepare_program

            program = prepare_program(program)
        decl = program.decl(name)
    except KeyError:
        return ModelAnalysis(conclusive=False, reason=f"no node {name!r}", name=name)
    except Exception as exc:
        return ModelAnalysis(
            conclusive=False,
            reason=f"program does not compile: {type(exc).__name__}: {exc}",
            name=name,
        )
    try:
        return _NodeAnalyzer(program, decl, file=file).analyze()
    except Inconclusive as exc:
        analyzer_diags: Tuple[Diagnostic, ...] = ()
        return ModelAnalysis(
            conclusive=False, reason=str(exc), name=name, diagnostics=analyzer_diags
        )
    except Exception as exc:  # pragma: no cover - defensive
        return ModelAnalysis(
            conclusive=False,
            reason=f"analysis failed with {type(exc).__name__}: {exc}",
            name=name,
        )


def analyze_program(
    program: Program, file: str = ""
) -> Dict[str, ModelAnalysis]:
    """Analyze every probabilistic node of a program.

    Returns ``{node_name: ModelAnalysis}`` for nodes that sample,
    observe, or factor (deterministic driver nodes are skipped — they
    have no random variables to analyze).
    """
    try:
        from repro.core.compiler import prepare_program

        prepared = prepare_program(program)
    except Exception as exc:
        return {
            decl.name: ModelAnalysis(
                conclusive=False,
                reason=f"program does not compile: {type(exc).__name__}: {exc}",
                name=decl.name,
            )
            for decl in program.decls
        }
    out: Dict[str, ModelAnalysis] = {}
    for decl in prepared.decls:
        if is_probabilistic(decl, prepared):
            out[decl.name] = analyze_node(
                prepared, decl.name, file=file, prepared=True
            )
    return out


def lint_program(program: Program, file: str = "") -> List[Diagnostic]:
    """All diagnostics of every probabilistic node of ``program``."""
    diags: List[Diagnostic] = []
    for analysis in analyze_program(program, file=file).values():
        diags.extend(analysis.diagnostics)
    return diags


# ----------------------------------------------------------------------
# muF: a light structural pass
# ----------------------------------------------------------------------

def analyze_muf_term(term: Any, name: str = "<muf>") -> ModelAnalysis:
    """Structural taint pass over a muF term (Fig. 10).

    muF is higher-order, so a sound dataflow analysis would need a
    closure analysis; instead this pass walks the term structurally:
    families are collected from ``MOp`` distribution constructors, and
    an ``MIf`` whose condition syntactically contains a ``sample`` (or
    a variable bound to one in an enclosing ``let``) is flagged as a
    lockstep violation. The result is deliberately ``conclusive=False``
    — routing never trusts it over the probe — but the diagnostics
    power ``replint`` for hand-written terms.
    """
    from repro.core.muf import (
        MApp,
        MFactor,
        MFun,
        MIf,
        MLet,
        MObserve,
        MOp,
        MSample,
        MTerm,
        MTuple,
        PVar,
    )

    diagnostics: List[Diagnostic] = []
    families: Set[str] = set()
    sampled_vars: Set[str] = set()

    def contains_sample(t: Any) -> bool:
        if isinstance(t, MSample):
            return True
        from repro.core.muf import MVar

        if isinstance(t, MVar):
            return t.name in sampled_vars
        for child in _muf_children(t):
            if contains_sample(child):
                return True
        return False

    def _muf_children(t: Any):
        if isinstance(t, MTuple):
            return t.elems
        if isinstance(t, MOp):
            return t.args
        if isinstance(t, MApp):
            return (t.func, t.arg)
        if isinstance(t, MIf):
            return (t.cond, t.then_branch, t.else_branch)
        if isinstance(t, MLet):
            return (t.bound, t.body)
        if isinstance(t, MFun):
            return (t.body,)
        if isinstance(t, MSample):
            return (t.dist,)
        if isinstance(t, MObserve):
            return (t.dist, t.value)
        if isinstance(t, MFactor):
            return (t.score,)
        return ()

    def walk(t: Any) -> None:
        if isinstance(t, MOp) and t.name in DIST_OPS:
            families.add(t.name)
        if isinstance(t, MLet) and isinstance(t.pat, PVar):
            if contains_sample(t.bound):
                sampled_vars.add(t.pat.name)
        if isinstance(t, MIf) and contains_sample(t.cond):
            diagnostics.append(
                make_diagnostic(
                    LOCKSTEP_BRANCH,
                    "muF `if` condition depends on a sampled value — "
                    "cannot run in lockstep on the batched backend",
                    Site(name=name),
                )
            )
        for child in _muf_children(t):
            walk(child)

    if not isinstance(term, MTerm):
        return ModelAnalysis(
            conclusive=False, reason="not a muF term", name=name
        )
    walk(term)
    return ModelAnalysis(
        conclusive=False,
        batchable=False,
        bounded=False,
        families=frozenset(families),
        diagnostics=tuple(diagnostics),
        reason="muF terms get the structural pass only (higher-order)",
        name=name,
    )
