"""Shared result types of the ahead-of-time model analysis.

Every frontend (the Python abstract interpreter of
:mod:`repro.analysis.absint`, the kernel-AST walker of
:mod:`repro.analysis.core_ast`) produces the same artifacts:

* a per-step static random-variable dependency graph (:class:`RVNode`
  / :class:`EdgeInfo` inside a :class:`StepGraph`),
* a :class:`ModelAnalysis` verdict triple — *bounded memory* (the
  delayed-sampling graph cannot grow across instants), *batchable*
  (the model runs in lockstep on the generic batched DS graph), and a
  list of :class:`Diagnostic` lint findings,
* machine-readable :class:`Diagnostic` records (the ``replint``
  catalogue below).

The verdict fields mirror the *empirical*
:class:`~repro.delayed.detect.DSStructureReport` (``families``,
``shape``, ``forced``, ``is_batchable``) so the two can be
cross-validated model by model — the analysis answers the same question
without executing the model.

Diagnostic catalogue
--------------------

==========  ========  ====================================================
code        severity  meaning
==========  ========  ====================================================
``REP001``  error     unbounded delayed-sampling memory: a sampled
                      variable is never observed/realized and the chain
                      it anchors grows by one node per instant
``REP002``  warning   lockstep violation: control flow branches on a
                      per-particle sampled value — the model cannot run
                      on the batched backend (scalar engines still work)
``REP003``  warning   non-conjugate edge: the delayed sampler must
                      realize the parent at this site (per-slot
                      realize-and-continue; costs one forced realization
                      per instant)
``REP004``  warning   family without batched kernels (outside
                      ``BATCHABLE_FAMILIES``)
``REP005``  warning   unused observe: the observed distribution has no
                      latent parameter, so it conditions nothing (all
                      particles receive the same weight)
``REP006``  warning   unreachable ``init``: the initialization value is
                      dead (the variable's ``last`` is never read)
``REP007``  error     unguarded ``last``: ``last x`` without an
                      ``init x`` in scope
``REP008``  warning   dangling random variable: sampled, kept live in
                      the stream state forever, never observed or
                      realized (one permanent graph node)
``REP009``  error     symbolic branch: control flow on a symbolic value
                      — raises at runtime under every delayed sampler;
                      force it with ``value()`` first
==========  ========  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

__all__ = [
    "Site",
    "Diagnostic",
    "RVNode",
    "EdgeInfo",
    "StepGraph",
    "ModelAnalysis",
    "SEVERITIES",
    "DIAGNOSTIC_CODES",
    "UNBOUNDED_MEMORY",
    "LOCKSTEP_BRANCH",
    "NONCONJUGATE_EDGE",
    "NONBATCHABLE_FAMILY",
    "UNUSED_OBSERVE",
    "UNREACHABLE_INIT",
    "UNGUARDED_LAST",
    "DANGLING_RV",
    "SYMBOLIC_BRANCH",
]

UNBOUNDED_MEMORY = "REP001"
LOCKSTEP_BRANCH = "REP002"
NONCONJUGATE_EDGE = "REP003"
NONBATCHABLE_FAMILY = "REP004"
UNUSED_OBSERVE = "REP005"
UNREACHABLE_INIT = "REP006"
UNGUARDED_LAST = "REP007"
DANGLING_RV = "REP008"
SYMBOLIC_BRANCH = "REP009"

SEVERITIES = ("error", "warning", "info")

DIAGNOSTIC_CODES = {
    UNBOUNDED_MEMORY: "unbounded-memory",
    LOCKSTEP_BRANCH: "lockstep-branch",
    NONCONJUGATE_EDGE: "non-conjugate-edge",
    NONBATCHABLE_FAMILY: "non-batchable-family",
    UNUSED_OBSERVE: "unused-observe",
    UNREACHABLE_INIT: "unreachable-init",
    UNGUARDED_LAST: "unguarded-last",
    DANGLING_RV: "dangling-rv",
    SYMBOLIC_BRANCH: "symbolic-branch",
}


@dataclass(frozen=True)
class Site:
    """Where a finding points: a file/line for Python models, a node
    and variable name for kernel-AST programs."""

    name: str = ""
    file: str = ""
    line: int = 0

    def __str__(self) -> str:
        parts = []
        if self.file:
            parts.append(f"{self.file}:{self.line}" if self.line else self.file)
        elif self.line:
            parts.append(f"line {self.line}")
        if self.name:
            parts.append(self.name)
        return " ".join(parts)


@dataclass(frozen=True)
class Diagnostic:
    """One lint finding (see the catalogue in the module docstring)."""

    code: str
    severity: str
    message: str
    site: Site = Site()

    @property
    def slug(self) -> str:
        return DIAGNOSTIC_CODES.get(self.code, self.code)

    def format(self) -> str:
        where = str(self.site)
        prefix = f"{where}: " if where else ""
        return f"{prefix}{self.severity} {self.code} [{self.slug}] {self.message}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "slug": self.slug,
            "severity": self.severity,
            "message": self.message,
            "name": self.site.name,
            "file": self.site.file,
            "line": self.site.line,
        }


@dataclass(frozen=True)
class RVNode:
    """A random variable of the static per-step graph.

    ``kind`` is ``"sample"``, ``"observe"``, or ``"carried"`` (a
    variable created in a previous instant and read through the stream
    state / ``last``). ``root`` marks sampled variables whose
    distribution parameters contain no other random variable.
    """

    uid: int
    name: str
    family: str
    kind: str
    root: bool = False
    site: Site = Site()


@dataclass(frozen=True)
class EdgeInfo:
    """A dependency edge of the static graph.

    ``kind`` classifies the conjugacy relation the batched runtime
    would use: ``affine`` (scalar affine-Gaussian, possibly with
    per-particle coefficients), ``projection`` (component read of a
    multivariate Gaussian), ``mv_affine`` (matrix-affine mv-Gaussian),
    ``beta_bernoulli``, ``gamma_poisson``, ``dirichlet_categorical``,
    ``identity``, or ``nonconjugate`` — the last is a predicted
    realize-and-continue site (the delayed sampler must realize the
    parent before scoring the child).
    """

    parent: str
    child: str
    kind: str
    conjugate: bool
    site: Site = Site()


@dataclass(frozen=True)
class StepGraph:
    """The static random-variable graph of one abstract stream step."""

    nodes: Tuple[RVNode, ...] = ()
    edges: Tuple[EdgeInfo, ...] = ()
    observed: Tuple[int, ...] = ()
    realized: Tuple[int, ...] = ()
    sample_roots: int = 0


@dataclass(frozen=True)
class ModelAnalysis:
    """The ahead-of-time verdicts for one model / node.

    ``conclusive`` says whether the analysis could see through the
    model; when it is False the remaining verdicts are conservative
    defaults and callers should fall back to the empirical probe
    (:func:`repro.delayed.detect.probe_ds_structure`).

    The ``families`` / ``shape`` / ``forced`` / ``is_batchable``
    quadruple is directly comparable with
    :class:`~repro.delayed.detect.DSStructureReport`.
    """

    conclusive: bool
    batchable: bool = False
    bounded: bool = False
    families: frozenset = frozenset()
    shape: str = "chain"
    forced: int = 0
    step_graph: Optional[StepGraph] = None
    realize_sites: Tuple[EdgeInfo, ...] = ()
    diagnostics: Tuple[Diagnostic, ...] = ()
    reason: str = ""
    name: str = ""

    @property
    def is_batchable(self) -> bool:
        """Alias matching :class:`~repro.delayed.detect.DSStructureReport`."""
        return self.batchable

    @property
    def verdict(self) -> str:
        """One-word routing verdict: the metric label of
        ``repro_analysis_verdicts_total``."""
        if not self.conclusive:
            return "inconclusive"
        if not self.batchable:
            return "unbatchable"
        return "batchable" if self.bounded else "batchable_unbounded"

    def errors(self) -> Tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")


def make_diagnostic(
    code: str, message: str, site: Site = Site(), severity: Optional[str] = None
) -> Diagnostic:
    """Build a diagnostic with the catalogue's default severity."""
    if severity is None:
        severity = "error" if code in (UNBOUNDED_MEMORY, UNGUARDED_LAST, SYMBOLIC_BRANCH) else "warning"
    return Diagnostic(code, severity, message, site)
