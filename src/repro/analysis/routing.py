"""Analysis-first backend routing.

The glue between the static analysis and engine selection. Before this
module, ``infer(..., backend="auto")`` discovered the right backend
*empirically*: try the vectorized registries, run the model, migrate to
the scalar engines mid-stream when the graph rejects it. Now the
ahead-of-time verdict is consulted first and the runtime probe
(:func:`repro.delayed.detect.probe_ds_structure`) is demoted to
confirmation — it only runs for models the analysis cannot see through
(``conclusive=False``).

Every consultation increments ``repro_analysis_verdicts_total{verdict}``
(always-on, like the scalar-fallback counters), so a fleet's routing
decisions are visible next to its fallbacks::

    repro_analysis_verdicts_total{verdict="batchable"}            12
    repro_analysis_verdicts_total{verdict="batchable_unbounded"}   1
    repro_analysis_verdicts_total{verdict="unbatchable"}           2
    repro_analysis_verdicts_total{verdict="inconclusive"}          3

The cache is per *model configuration* (class + constructor attribute
values), not per instance: analyzing is cheap (a few ms) but
``infer()`` may be called per stream session, thousands of times.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.analysis.absint import analyze_model
from repro.analysis.report import ModelAnalysis

__all__ = [
    "analysis_for",
    "record_verdict",
    "consult_for_backend",
    "clear_analysis_cache",
]

_CACHE: Dict[Tuple, ModelAnalysis] = {}
_CACHE_MAX = 1024


def _attr_repr(value: Any) -> str:
    """A repr safe to key a cache on: default object reprs embed memory
    addresses (``<... object at 0x...>``), which would make every
    instance a cache miss — normalize those to the type name."""
    r = repr(value)
    if " at 0x" in r:
        return f"<{type(value).__module__}.{type(value).__qualname__}>"
    return r


def _cache_key(model: Any) -> Optional[Tuple]:
    """A structural key: class plus constructor-attribute reprs.

    Two instances of the same class with the same attributes have the
    same step dataflow, so they share one analysis. Models with exotic
    attribute sets (unreprable, huge) fall back to uncached analysis.
    """
    try:
        attrs = vars(model)
    except TypeError:
        return (type(model),)
    try:
        items = tuple(sorted((k, _attr_repr(v)) for k, v in attrs.items()))
    except Exception:
        return None
    if sum(len(k) + len(v) for k, v in items) > 4096:
        return None
    return (type(model), items)


def analysis_for(model: Any) -> ModelAnalysis:
    """The (cached) static analysis of ``model``."""
    key = _cache_key(model)
    if key is not None and key in _CACHE:
        return _CACHE[key]
    analysis = analyze_model(model)
    if key is not None:
        if len(_CACHE) >= _CACHE_MAX:
            _CACHE.clear()
        _CACHE[key] = analysis
    return analysis


def clear_analysis_cache() -> None:
    _CACHE.clear()


def record_verdict(analysis: ModelAnalysis) -> None:
    """Count the verdict in ``repro_analysis_verdicts_total``."""
    # Imported lazily: repro.obs is optional at call sites that only
    # want the verdict.
    from repro.obs import count_event

    count_event("repro_analysis_verdicts_total", {"verdict": analysis.verdict})


def _routed_model(model: Any) -> Any:
    """The model the batched engine would actually run: the registered
    lockstep adapter's rewrite when one exists, else the model itself.

    Judging the raw model would mis-route adapted registrations — e.g.
    the Outlier model branches on a forced value (conclusively
    unbatchable), but its registration wraps it in the masked-affine
    :class:`~repro.vectorized.models.GraphOutlierModel`, which is
    squarely inside the fragment.
    """
    # Imported lazily: repro.vectorized lazily imports this module for
    # registration-time verification.
    try:
        from repro.vectorized.models import DS_GRAPH_ADAPTERS
    except Exception:
        return model
    adapter = DS_GRAPH_ADAPTERS.get(type(model))
    if adapter is None:
        return model
    try:
        return adapter(model)
    except Exception:
        return model


def consult_for_backend(model: Any, method_key: str) -> Tuple[ModelAnalysis, Optional[bool]]:
    """Should ``backend="auto"`` try the vectorized engines?

    Returns ``(analysis, decision)`` where ``decision`` is:

    * ``False`` — conclusively out of fragment for a delayed-sampling
      method (wrong families, lockstep violation) even after the
      registered lockstep adapter, if any: skip the vectorized
      registries entirely and build the scalar engine.
    * ``True`` — conclusively batchable *and* bounded: try the
      vectorized path, and the caller may construct a generic graph
      engine even on a registry miss.
    * ``None`` — no static opinion (inconclusive, a method whose
      vectorization is a registry property like ``pf``, or batchable
      but unbounded — the registries may still serve it, but the
      analysis will not volunteer an engine whose graph grows without
      bound): behave as before — registry lookup, runtime
      probe/fallback as last resort.

    The verdict is recorded in ``repro_analysis_verdicts_total``.
    """
    analysis = analysis_for(_routed_model(model))
    record_verdict(analysis)
    if method_key not in ("sds", "bds"):
        # pf/importance vectorization is about having a step_batch
        # implementation, which is a registry fact, not a dataflow one.
        return analysis, None
    if not analysis.conclusive:
        return analysis, None
    if not analysis.batchable:
        return analysis, False
    return analysis, True if analysis.bounded else None
