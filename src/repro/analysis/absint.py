"""Ahead-of-time analysis of Python stream models (``ProbNode.step``).

The runtime answers "which backend, and is memory bounded?" by
*executing* a model against an instrumented graph
(:func:`repro.delayed.detect.probe_ds_structure`). This module answers
the same question **statically**: it parses the model's ``step``
function with :mod:`ast` and abstractly interprets it, tracking which
values are random variables, which are per-particle forced values, and
which are stream inputs — never drawing a sample, never touching an
RNG, never needing probe data.

The interpretation runs the abstract step repeatedly, replacing random
variables that flow into the returned state with *carried* markers,
until the state's abstract structure reaches a fixpoint (the
steady-state instant). From the steady-state step graph it derives:

* **bounded memory** — an m-consumed-style check: every sampled
  variable must be *consumed* (observed through a conjugate child,
  or realized by ``ctx.value`` / a predicted dependency-breaking
  realization) within a bounded number of instants, following the
  dataflow of the stream state. A fresh variable that cycles through
  state slots without ever being consumed grows the delayed-sampling
  chain by one node per instant (``REP001``); a never-consumed
  persistent variable that anchors a growing chain is the
  ``hmm_init`` pathology of Section 5.3 (also ``REP001``).
* **batchability** — all families inside
  :data:`~repro.delayed.detect.BATCHABLE_FAMILIES`, every edge
  classified against the batched conjugacy kernels (affine-Gaussian,
  projection, mv-affine, Beta-Bernoulli, Gamma-Poisson,
  Dirichlet-Categorical), and the *lockstep* condition: no Python
  control flow branching on a per-particle value (``REP002``) or on a
  symbolic value (``REP009``). Non-conjugate edges do not defeat
  batchability — they are reported as predicted per-slot
  realize-and-continue sites (``REP003``).

Models whose code uses constructs the interpreter does not model
(unbounded loops, unknown calls receiving random variables, missing
source) yield ``conclusive=False`` — the caller falls back to the
empirical probe.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.analysis.report import (
    DANGLING_RV,
    LOCKSTEP_BRANCH,
    NONCONJUGATE_EDGE,
    NONBATCHABLE_FAMILY,
    SYMBOLIC_BRANCH,
    UNBOUNDED_MEMORY,
    UNUSED_OBSERVE,
    Diagnostic,
    EdgeInfo,
    ModelAnalysis,
    RVNode,
    Site,
    StepGraph,
    make_diagnostic,
)

__all__ = ["analyze_model", "Inconclusive"]

#: iteration caps: abstract instants until the state shape must
#: stabilize, and unrollable loop length.
MAX_ABSTRACT_STEPS = 8
MAX_UNROLL = 64


class Inconclusive(Exception):
    """The analysis cannot see through the model; fall back to the probe."""


class _Return(Exception):
    def __init__(self, value):
        self.value = value


# ----------------------------------------------------------------------
# abstract values
# ----------------------------------------------------------------------

class AbsVal:
    """Base class of abstract values."""


@dataclass(frozen=True)
class AbsConst(AbsVal):
    """A value the analysis knows concretely (model params, literals)."""

    value: Any


@dataclass(frozen=True)
class AbsInput(AbsVal):
    """The step input or a projection of it — shared by all particles."""

    path: str = "input"


@dataclass(frozen=True)
class Affine(AbsVal):
    """Affine dependence on exactly one random variable.

    ``kind`` is ``"scalar"`` (a + b*x), ``"projection"`` (component
    read of a multivariate variable, possibly rescaled), or ``"mv"``
    (matrix-affine transform of a multivariate variable).
    """

    uid: int
    kind: str


@dataclass(frozen=True)
class AbsRV(AbsVal):
    """A reference to a random-variable node of the step graph."""

    uid: int


@dataclass(frozen=True)
class AbsDerived(AbsVal):
    """An expression over random variables / forced values / inputs.

    ``rvs`` are the symbolic random variables the value depends on;
    ``forced`` marks per-particle concrete values (results of
    ``ctx.value``); ``inputy`` marks dependence on the step input.
    ``affine`` is set when the value is affine in exactly one variable.
    """

    rvs: frozenset = frozenset()
    affine: Optional[Affine] = None
    forced: bool = False
    inputy: bool = False


@dataclass(frozen=True)
class AbsTuple(AbsVal):
    elems: Tuple[AbsVal, ...]


@dataclass(frozen=True)
class AbsDist(AbsVal):
    """An unevaluated distribution term: family plus abstract params."""

    family: str
    params: Tuple[AbsVal, ...]


_CTX = object()  # sentinel bound to the ProbCtx parameter


def _rvs(val: AbsVal) -> frozenset:
    if isinstance(val, AbsRV):
        return frozenset((val.uid,))
    if isinstance(val, AbsDerived):
        return val.rvs
    if isinstance(val, AbsTuple):
        out = frozenset()
        for e in val.elems:
            out |= _rvs(e)
        return out
    if isinstance(val, AbsDist):
        out = frozenset()
        for e in val.params:
            out |= _rvs(e)
        return out
    return frozenset()


def _flag(val: AbsVal, name: str) -> bool:
    if isinstance(val, AbsDerived):
        return getattr(val, name)
    if isinstance(val, AbsTuple):
        return any(_flag(e, name) for e in val.elems)
    if isinstance(val, AbsInput):
        return name == "inputy"
    return False


def _merge_flags(*vals: AbsVal) -> Tuple[frozenset, bool, bool]:
    rvs = frozenset()
    forced = inputy = False
    for v in vals:
        rvs |= _rvs(v)
        forced = forced or _flag(v, "forced")
        inputy = inputy or _flag(v, "inputy")
    return rvs, forced, inputy


def _derived(*vals: AbsVal, affine: Optional[Affine] = None) -> AbsDerived:
    rvs, forced, inputy = _merge_flags(*vals)
    return AbsDerived(rvs=rvs, affine=affine, forced=forced, inputy=inputy)


def _is_concrete(val: AbsVal) -> bool:
    if isinstance(val, AbsConst):
        return True
    if isinstance(val, AbsTuple):
        return all(_is_concrete(e) for e in val.elems)
    return False


def _concrete(val: AbsVal) -> Any:
    if isinstance(val, AbsConst):
        return val.value
    if isinstance(val, AbsTuple):
        return tuple(_concrete(e) for e in val.elems)
    raise Inconclusive("expected a concrete value")


def _to_abstract(value: Any) -> AbsVal:
    if isinstance(value, tuple):
        return AbsTuple(tuple(_to_abstract(v) for v in value))
    return AbsConst(value)


def _affine_of(val: AbsVal) -> Optional[Affine]:
    if isinstance(val, AbsRV):
        return Affine(val.uid, "scalar")
    if isinstance(val, AbsDerived):
        return val.affine
    return None


# ----------------------------------------------------------------------
# distribution constructors and call whitelists
# ----------------------------------------------------------------------

def _family_constructors() -> Dict[int, str]:
    from repro.lang import (
        bernoulli,
        beta,
        binomial,
        categorical,
        delta,
        dirichlet,
        exponential,
        gamma,
        gaussian,
        inverse_gamma,
        mv_gaussian,
        poisson,
        uniform,
    )

    return {
        id(gaussian): "gaussian",
        id(mv_gaussian): "mv_gaussian",
        id(beta): "beta",
        id(bernoulli): "bernoulli",
        id(binomial): "binomial",
        id(gamma): "gamma",
        id(poisson): "poisson",
        id(dirichlet): "dirichlet",
        id(categorical): "categorical",
        id(exponential): "exponential",
        id(uniform): "uniform",
        id(inverse_gamma): "inverse_gamma",
        id(delta): "delta",
    }


_COERCIONS = (float, int, bool, abs)

#: callables safe to run for real when every argument is concrete.
_SAFE_CONCRETE = (
    float, int, bool, abs, len, min, max, sum, range, tuple, list, dict,
    round, sorted, zip, enumerate, str,
)


def _is_numpy_callable(fn: Any) -> bool:
    mod = getattr(fn, "__module__", "") or ""
    return mod == "numpy" or mod.startswith("numpy.")


# ----------------------------------------------------------------------
# the step graph under construction
# ----------------------------------------------------------------------

@dataclass
class _Node:
    uid: int
    name: str
    family: str
    kind: str  # sample | observe | carried
    root: bool
    site: Site
    parents: List[int] = field(default_factory=list)
    children: List[int] = field(default_factory=list)
    observed: bool = False
    realized: bool = False
    slot: Optional[Tuple[int, ...]] = None  # for carried markers
    default_name: bool = True


@dataclass
class _StepRecord:
    """Everything one abstract instant produced."""

    nodes: Dict[int, _Node] = field(default_factory=dict)
    edges: List[EdgeInfo] = field(default_factory=list)
    roots: int = 0
    forced: int = 0
    families: Set[str] = field(default_factory=set)
    realize_sites: List[EdgeInfo] = field(default_factory=list)

    def consumed(self, uid: int) -> bool:
        """Observed/realized, directly or through a same-step descendant."""
        seen: Set[int] = set()
        stack = [uid]
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in self.nodes:
                continue
            seen.add(cur)
            node = self.nodes[cur]
            if node.observed or node.realized:
                return True
            stack.extend(node.children)
        return False

    def carried_ancestors(self, uid: int) -> Set[Tuple[int, ...]]:
        """Slots of the carried markers among a node's in-step ancestors."""
        out: Set[Tuple[int, ...]] = set()
        seen: Set[int] = set()
        stack = [uid]
        while stack:
            cur = stack.pop()
            if cur in seen or cur not in self.nodes:
                continue
            seen.add(cur)
            node = self.nodes[cur]
            if node.kind == "carried" and cur != uid:
                out.add(node.slot)
                continue
            stack.extend(node.parents)
        return out


def classify_dist_edge(record: _StepRecord, dist: AbsDist) -> Tuple[str, bool]:
    """Classify a dist's dependence on its random-variable params.

    Returns ``(kind, conjugate)`` where ``kind`` is one of ``affine``,
    ``projection``, ``mv_affine``, ``beta_bernoulli``, ``gamma_poisson``,
    ``dirichlet_categorical``, or ``nonconjugate``. Shared by the Python
    frontend here and the kernel-AST frontend
    (:mod:`repro.analysis.core_ast`).
    """
    params = dist.params
    family = dist.family
    all_rvs = frozenset().union(*[_rvs(p) for p in params]) if params else frozenset()
    if len(all_rvs) > 1:
        return "nonconjugate", False
    (parent_uid,) = tuple(all_rvs)
    parent = record.nodes.get(parent_uid)
    pfam = parent.family if parent else ""

    def rv_free(val: AbsVal) -> bool:
        return not _rvs(val)

    if family == "gaussian" and len(params) >= 2:
        mean, var = params[0], params[1]
        if not rv_free(var):
            return "nonconjugate", False
        aff = _affine_of(mean)
        if aff is None or aff.uid != parent_uid:
            return "nonconjugate", False
        if pfam == "gaussian" and aff.kind == "scalar":
            return "affine", True
        if pfam == "mv_gaussian" and aff.kind == "projection":
            return "projection", True
        return "nonconjugate", False
    if family == "mv_gaussian" and len(params) >= 2:
        mean, cov = params[0], params[1]
        if not rv_free(cov):
            return "nonconjugate", False
        aff = _affine_of(mean)
        if (
            aff is not None
            and aff.uid == parent_uid
            and pfam == "mv_gaussian"
            and aff.kind in ("scalar", "mv")
        ):
            return "mv_affine", True
        return "nonconjugate", False
    identity = len(params) >= 1 and isinstance(params[0], AbsRV)
    if family == "bernoulli" and identity and pfam == "beta":
        return "beta_bernoulli", True
    if family == "poisson" and identity and pfam == "gamma":
        return "gamma_poisson", True
    if family == "categorical" and identity and pfam == "dirichlet":
        return "dirichlet_categorical", True
    return "nonconjugate", False


def make_rv(
    record: _StepRecord,
    uid: int,
    family: str,
    params: Sequence[AbsVal],
    site: Site,
    observe: bool,
    name: str = "",
) -> _Node:
    """Create a sample/observe node in ``record`` with parent edges."""
    parents = sorted(
        frozenset().union(*[_rvs(p) for p in params]) if params else frozenset()
    )
    kind = "observe" if observe else "sample"
    root = not parents and not observe
    rv = _Node(
        uid=uid,
        name=name or f"{family}@{site.line}",
        family=family,
        kind=kind,
        root=root,
        site=site,
        default_name=not name,
    )
    record.nodes[uid] = rv
    record.families.add(family)
    if root:
        record.roots += 1
    for p in parents:
        rv.parents.append(p)
        if p in record.nodes:
            record.nodes[p].children.append(uid)
    return rv


# ----------------------------------------------------------------------
# the interpreter
# ----------------------------------------------------------------------

class _StepInterpreter(ast.NodeVisitor):
    """Abstractly execute one ``step`` call."""

    def __init__(
        self,
        analyzer: "_ModelAnalyzer",
        env: Dict[str, AbsVal],
        record: _StepRecord,
    ):
        self.analyzer = analyzer
        self.env = env
        self.record = record
        #: nesting depth of branches whose condition is per-particle —
        #: observes below them are particle-selective, not posterior-neutral.
        self.particle_branch_depth = 0
        self.input_branch_depth = 0

    # -- plumbing ------------------------------------------------------

    def site(self, node: ast.AST) -> Site:
        return self.analyzer.site(node)

    def diag(self, code: str, message: str, node: ast.AST, severity=None) -> None:
        self.analyzer.add_diag(make_diagnostic(code, message, self.site(node), severity))

    def fresh_rv(
        self, family: str, params: Sequence[AbsVal], node: ast.AST, observe: bool
    ) -> _Node:
        return make_rv(
            self.record,
            self.analyzer.next_uid(),
            family,
            params,
            self.site(node),
            observe,
        )

    def classify_and_link(
        self, rv: _Node, dist: AbsDist, node: ast.AST
    ) -> None:
        """Classify the conjugacy of each parent edge; realize on failure."""
        if not rv.parents:
            return
        kind, conjugate = classify_dist_edge(self.record, dist)
        parent_names = ",".join(
            self.record.nodes[p].name if p in self.record.nodes else str(p)
            for p in rv.parents
        )
        edge = EdgeInfo(
            parent=parent_names,
            child=rv.name,
            kind=kind,
            conjugate=conjugate,
            site=self.site(node),
        )
        self.record.edges.append(edge)
        if not conjugate:
            # Predicted per-slot realize-and-continue: the delayed
            # sampler realizes the parent(s) before this site runs.
            self.record.realize_sites.append(edge)
            for p in rv.parents:
                if p in self.record.nodes:
                    self.record.nodes[p].realized = True
            self.record.forced += len(rv.parents)
            cost = "one forced realization per parent per instant"
            self.diag(
                NONCONJUGATE_EDGE,
                f"non-conjugate dependence of {rv.family}({parent_names}) — "
                f"the delayed sampler realizes the parent here ({cost})",
                node,
            )

    # -- statements ----------------------------------------------------

    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self.visit(stmt)

    def generic_visit(self, node: ast.AST):
        raise Inconclusive(
            f"unsupported construct {type(node).__name__} at line "
            f"{getattr(node, 'lineno', '?')}"
        )

    def visit_Pass(self, node):  # noqa: N802
        pass

    def visit_Import(self, node):  # noqa: N802
        import importlib

        for alias in node.names:
            try:
                mod = importlib.import_module(alias.name)
            except ImportError as exc:
                raise Inconclusive(f"import failed at line {node.lineno}: {exc}")
            bind = alias.asname or alias.name.split(".")[0]
            if alias.asname is None and "." in alias.name:
                mod = importlib.import_module(alias.name.split(".")[0])
            self.env[bind] = AbsConst(mod)

    def visit_ImportFrom(self, node):  # noqa: N802
        import importlib

        if node.level:
            raise Inconclusive(f"relative import at line {node.lineno}")
        try:
            mod = importlib.import_module(node.module)
        except ImportError as exc:
            raise Inconclusive(f"import failed at line {node.lineno}: {exc}")
        for alias in node.names:
            if alias.name == "*":
                raise Inconclusive(f"star import at line {node.lineno}")
            try:
                value = getattr(mod, alias.name)
            except AttributeError:
                raise Inconclusive(
                    f"cannot import {alias.name!r} from {node.module!r} "
                    f"at line {node.lineno}"
                )
            self.env[alias.asname or alias.name] = AbsConst(value)

    def visit_Assert(self, node):  # noqa: N802
        pass

    def visit_Raise(self, node):  # noqa: N802
        # A raising path contributes nothing to the steady-state graph.
        pass

    def visit_Expr(self, node):  # noqa: N802
        self.eval(node.value)

    def visit_Assign(self, node):  # noqa: N802
        value = self.eval(node.value)
        for target in node.targets:
            self.assign(target, value)

    def visit_AnnAssign(self, node):  # noqa: N802
        if node.value is not None:
            self.assign(node.target, self.eval(node.value))

    def visit_AugAssign(self, node):  # noqa: N802
        current = self.eval(node.target)
        value = self.binop(node.op, current, self.eval(node.value), node)
        self.assign(node.target, value)

    def assign(self, target: ast.expr, value: AbsVal) -> None:
        if isinstance(target, ast.Name):
            if isinstance(value, AbsRV):
                rv = self.record.nodes.get(value.uid)
                if rv is not None and rv.default_name:
                    rv.name = target.id
                    rv.default_name = False
            self.env[target.id] = value
            return
        if isinstance(target, (ast.Tuple, ast.List)):
            elems = None
            if isinstance(value, AbsTuple):
                elems = value.elems
            elif isinstance(value, AbsConst) and isinstance(value.value, (tuple, list)):
                elems = tuple(AbsConst(v) for v in value.value)
            elif isinstance(value, AbsInput):
                # destructuring the step input: each component is itself
                # an input-derived value shared by all particles.
                elems = tuple(
                    AbsInput(path=f"{value.path}[{i}]")
                    for i in range(len(target.elts))
                )
            if elems is None or len(elems) != len(target.elts):
                raise Inconclusive(
                    f"cannot destructure abstract value at line {target.lineno}"
                )
            for sub, el in zip(target.elts, elems):
                self.assign(sub, el)
            return
        raise Inconclusive(
            f"unsupported assignment target at line {getattr(target, 'lineno', '?')}"
        )

    def visit_Return(self, node):  # noqa: N802
        value = self.eval(node.value) if node.value is not None else AbsConst(None)
        raise _Return(value)

    def visit_If(self, node):  # noqa: N802
        self.branch(node.test, node.body, node.orelse, node)

    def visit_For(self, node):  # noqa: N802
        it = self.eval(node.iter)
        if not _is_concrete(it):
            raise Inconclusive(
                f"loop over a non-concrete iterable at line {node.lineno}"
            )
        items = list(_concrete(it)) if not isinstance(_concrete(it), range) else list(_concrete(it))
        if len(items) > MAX_UNROLL:
            raise Inconclusive(
                f"loop of {len(items)} iterations exceeds the unroll cap "
                f"at line {node.lineno}"
            )
        for item in items:
            self.assign(node.target, _to_abstract(item))
            self.run(node.body)
        if node.orelse:
            self.run(node.orelse)

    def visit_While(self, node):  # noqa: N802
        raise Inconclusive(f"while-loop at line {node.lineno}")

    def branch(
        self,
        test: ast.expr,
        body: Sequence[ast.stmt],
        orelse: Sequence[ast.stmt],
        node: ast.AST,
    ) -> None:
        cond = self.eval(test)
        taken = self._branch_condition(cond, node)
        if taken is not None:
            self.run(body if taken else orelse)
            return
        per_particle = bool(_rvs(cond)) or _flag(cond, "forced")
        roots_before = self.record.roots
        env_before = dict(self.env)
        if per_particle:
            self.particle_branch_depth += 1
        else:
            self.input_branch_depth += 1
        try:
            then_ret: Optional[_Return] = None
            else_ret: Optional[_Return] = None
            try:
                self.run(body)
            except _Return as r:
                then_ret = r
            env_then = self.env
            then_roots = self.record.roots
            self.env = dict(env_before)
            self.record.roots = roots_before
            try:
                self.run(orelse)
            except _Return as r:
                else_ret = r
            env_else = self.env
            else_roots = self.record.roots
        finally:
            if per_particle:
                self.particle_branch_depth -= 1
            else:
                self.input_branch_depth -= 1
        self.record.roots = roots_before + max(
            then_roots - roots_before, else_roots - roots_before
        )
        if then_ret is not None and else_ret is not None:
            raise _Return(self.merge_values(then_ret.value, else_ret.value))
        if then_ret is not None or else_ret is not None:
            raise Inconclusive(
                f"return in only one branch at line {getattr(node, 'lineno', '?')}"
            )
        self.env = self.merge_envs(env_then, env_else)

    def _branch_condition(self, cond: AbsVal, node: ast.AST) -> Optional[bool]:
        """Resolve a branch condition; None means 'analyze both arms'."""
        if _is_concrete(cond):
            return bool(_concrete(cond))
        if _rvs(cond):
            self.diag(
                SYMBOLIC_BRANCH,
                "control flow branches on a symbolic value — every delayed "
                "sampler raises here; force it with ctx.value() first",
                node,
            )
            self.analyzer.batchable_ok = False
            return None
        if _flag(cond, "forced"):
            self.diag(
                LOCKSTEP_BRANCH,
                "control flow branches on a per-particle forced value — "
                "the batched backend cannot run this model in lockstep "
                "(scalar engines still can)",
                node,
            )
            self.analyzer.batchable_ok = False
            return None
        return None  # input-dependent: lockstep-safe, analyze both arms

    def merge_values(self, a: AbsVal, b: AbsVal) -> AbsVal:
        if a == b:
            return a
        if isinstance(a, AbsTuple) and isinstance(b, AbsTuple) and len(a.elems) == len(b.elems):
            return AbsTuple(tuple(self.merge_values(x, y) for x, y in zip(a.elems, b.elems)))
        return _derived(a, b)

    def merge_envs(self, a: Dict[str, AbsVal], b: Dict[str, AbsVal]) -> Dict[str, AbsVal]:
        out: Dict[str, AbsVal] = {}
        for key in set(a) | set(b):
            if key in a and key in b:
                out[key] = self.merge_values(a[key], b[key])
            else:
                out[key] = a.get(key, b.get(key))
        return out

    # -- expressions ---------------------------------------------------

    def eval(self, node: ast.expr) -> AbsVal:
        method = getattr(self, f"eval_{type(node).__name__}", None)
        if method is None:
            raise Inconclusive(
                f"unsupported expression {type(node).__name__} at line "
                f"{getattr(node, 'lineno', '?')}"
            )
        return method(node)

    def eval_Constant(self, node):  # noqa: N802
        return AbsConst(node.value)

    def eval_Name(self, node):  # noqa: N802
        if node.id in self.env:
            return self.env[node.id]
        if node.id in self.analyzer.globals:
            return AbsConst(self.analyzer.globals[node.id])
        builtins = getattr(self.analyzer.globals.get("__builtins__", None), "__dict__", None)
        if builtins is None:
            builtins = self.analyzer.globals.get("__builtins__", {})
        if isinstance(builtins, dict) and node.id in builtins:
            return AbsConst(builtins[node.id])
        import builtins as _b

        if hasattr(_b, node.id):
            return AbsConst(getattr(_b, node.id))
        raise Inconclusive(f"unbound name {node.id!r} at line {node.lineno}")

    def eval_Tuple(self, node):  # noqa: N802
        return AbsTuple(tuple(self.eval(e) for e in node.elts))

    def eval_List(self, node):  # noqa: N802
        vals = [self.eval(e) for e in node.elts]
        if all(_is_concrete(v) for v in vals):
            return AbsConst([_concrete(v) for v in vals])
        return AbsTuple(tuple(vals))

    def eval_Dict(self, node):  # noqa: N802
        keys = [self.eval(k) if k is not None else None for k in node.keys]
        vals = [self.eval(v) for v in node.values]
        if all(k is not None and _is_concrete(k) for k in keys) and all(
            _is_concrete(v) for v in vals
        ):
            return AbsConst({_concrete(k): _concrete(v) for k, v in zip(keys, vals)})
        raise Inconclusive(f"non-concrete dict literal at line {node.lineno}")

    def eval_Attribute(self, node):  # noqa: N802
        base = self.eval(node.value)
        if base is _CTX:
            raise Inconclusive(f"ctx method {node.attr!r} used as a value")
        if isinstance(base, AbsConst):
            try:
                return AbsConst(getattr(base.value, node.attr))
            except AttributeError:
                raise Inconclusive(
                    f"unknown attribute {node.attr!r} at line {node.lineno}"
                )
        return _derived(base)

    def eval_Subscript(self, node):  # noqa: N802
        base = self.eval(node.value)
        index = self.eval(node.slice)
        if isinstance(base, AbsConst) and _is_concrete(index):
            try:
                return _to_abstract(base.value[_concrete(index)])
            except Exception:
                raise Inconclusive(f"subscript failed at line {node.lineno}")
        if isinstance(base, AbsTuple) and _is_concrete(index):
            idx = _concrete(index)
            if isinstance(idx, int) and -len(base.elems) <= idx < len(base.elems):
                return base.elems[idx]
            raise Inconclusive(f"tuple index out of range at line {node.lineno}")
        if isinstance(base, AbsRV):
            rv = self.record.nodes.get(base.uid)
            if rv is not None and rv.family == "mv_gaussian":
                return _derived(base, affine=Affine(base.uid, "projection"))
            return _derived(base)
        if isinstance(base, AbsInput):
            return AbsInput(path=f"{base.path}[...]")
        return _derived(base, index)

    def eval_UnaryOp(self, node):  # noqa: N802
        val = self.eval(node.operand)
        if _is_concrete(val):
            op = {
                ast.USub: lambda v: -v,
                ast.UAdd: lambda v: +v,
                ast.Not: lambda v: not v,
                ast.Invert: lambda v: ~v,
            }[type(node.op)]
            return AbsConst(op(_concrete(val)))
        if isinstance(node.op, (ast.USub, ast.UAdd)):
            aff = _affine_of(val)
            if aff is not None:
                return _derived(val, affine=replace(aff, kind=aff.kind if aff.kind != "scalar" else "scalar"))
        return _derived(val)

    def eval_BinOp(self, node):  # noqa: N802
        return self.binop(node.op, self.eval(node.left), self.eval(node.right), node)

    def binop(self, op: ast.operator, a: AbsVal, b: AbsVal, node: ast.AST) -> AbsVal:
        if _is_concrete(a) and _is_concrete(b):
            fn = {
                ast.Add: lambda x, y: x + y,
                ast.Sub: lambda x, y: x - y,
                ast.Mult: lambda x, y: x * y,
                ast.Div: lambda x, y: x / y,
                ast.FloorDiv: lambda x, y: x // y,
                ast.Mod: lambda x, y: x % y,
                ast.Pow: lambda x, y: x ** y,
                ast.MatMult: lambda x, y: x @ y,
            }.get(type(op))
            if fn is None:
                raise Inconclusive(f"operator {type(op).__name__} at line {getattr(node, 'lineno', '?')}")
            try:
                return AbsConst(fn(_concrete(a), _concrete(b)))
            except Exception:
                raise Inconclusive(
                    f"constant arithmetic failed at line {getattr(node, 'lineno', '?')}"
                )
        a_rvs, b_rvs = _rvs(a), _rvs(b)
        affine = None
        if isinstance(op, (ast.Add, ast.Sub)):
            if a_rvs and not b_rvs:
                aff = _affine_of(a)
                affine = replace(aff, kind=aff.kind) if aff else None
            elif b_rvs and not a_rvs:
                aff = _affine_of(b)
                affine = replace(aff, kind=aff.kind) if aff else None
        elif isinstance(op, (ast.Mult, ast.Div)):
            if a_rvs and not b_rvs and not (isinstance(op, ast.Div) and False):
                aff = _affine_of(a)
            elif b_rvs and not a_rvs and not isinstance(op, ast.Div):
                aff = _affine_of(b)
            else:
                aff = None
            if aff is not None:
                # scaling defeats the identity requirement but keeps
                # affine-ness for gaussian means / projections.
                affine = Affine(aff.uid, aff.kind) if aff.kind in ("scalar", "projection", "mv") else None
        return _derived(a, b, affine=affine)

    def eval_BoolOp(self, node):  # noqa: N802
        vals = [self.eval(v) for v in node.values]
        if all(_is_concrete(v) for v in vals):
            acc = [_concrete(v) for v in vals]
            if isinstance(node.op, ast.And):
                out = all(acc)
            else:
                out = any(acc)
            return AbsConst(out)
        return _derived(*vals)

    def eval_Compare(self, node):  # noqa: N802
        left = self.eval(node.left)
        rights = [self.eval(c) for c in node.comparators]
        vals = [left] + rights
        if all(_is_concrete(v) for v in vals):
            result = True
            cur = _concrete(left)
            for op, r in zip(node.ops, rights):
                rv = _concrete(r)
                fn = {
                    ast.Eq: lambda x, y: x == y,
                    ast.NotEq: lambda x, y: x != y,
                    ast.Lt: lambda x, y: x < y,
                    ast.LtE: lambda x, y: x <= y,
                    ast.Gt: lambda x, y: x > y,
                    ast.GtE: lambda x, y: x >= y,
                    ast.Is: lambda x, y: x is y or (x is None and y is None) or x == y is True,
                    ast.IsNot: lambda x, y: not (x is y or (x is None and y is None)),
                    ast.In: lambda x, y: x in y,
                    ast.NotIn: lambda x, y: x not in y,
                }[type(op)]
                result = result and bool(fn(cur, rv))
                cur = rv
            return AbsConst(result)
        # `x is None` on values that can never be None resolves concretely:
        # a random variable, a tuple, or a carried marker is not None.
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.Is, ast.IsNot))
            and isinstance(rights[0], AbsConst)
            and rights[0].value is None
        ):
            if isinstance(left, (AbsRV, AbsTuple, AbsDist)):
                is_none = False
                return AbsConst(is_none if isinstance(node.ops[0], ast.Is) else not is_none)
        return _derived(*vals)

    def eval_IfExp(self, node):  # noqa: N802
        cond = self.eval(node.test)
        taken = self._branch_condition(cond, node)
        if taken is not None:
            return self.eval(node.body if taken else node.orelse)
        return self.merge_values(self.eval(node.body), self.eval(node.orelse))

    def eval_JoinedStr(self, node):  # noqa: N802
        return _derived()

    def eval_Call(self, node):  # noqa: N802
        if node.keywords and any(k.arg is None for k in node.keywords):
            raise Inconclusive(f"**kwargs call at line {node.lineno}")
        # ctx.<op>(...) — the probabilistic operators.
        if isinstance(node.func, ast.Attribute):
            try:
                base = self.eval(node.func.value)
            except Inconclusive:
                base = None
            if base is _CTX:
                return self.ctx_call(node.func.attr, node)
        func = self.eval(node.func)
        if func is _CTX:
            raise Inconclusive(f"ctx used as a function at line {node.lineno}")
        args = [self.eval(a) for a in node.args]
        kwargs = {k.arg: self.eval(k.value) for k in node.keywords}
        if not isinstance(func, AbsConst):
            raise Inconclusive(f"call of a non-concrete function at line {node.lineno}")
        fn = func.value
        family = self.analyzer.families_by_id.get(id(fn))
        if family is not None:
            return AbsDist(family, tuple(args) + tuple(kwargs.values()))
        if fn is self.analyzer.sym_app:
            return self.sym_app_call(args, node)
        all_concrete = all(_is_concrete(v) for v in args) and all(
            _is_concrete(v) for v in kwargs.values()
        )
        if all_concrete and (fn in _SAFE_CONCRETE or _is_numpy_callable(fn)):
            try:
                result = fn(
                    *[_concrete(a) for a in args],
                    **{k: _concrete(v) for k, v in kwargs.items()},
                )
            except Exception as exc:
                raise Inconclusive(
                    f"concrete call {getattr(fn, '__name__', fn)!r} failed at "
                    f"line {node.lineno}: {exc}"
                )
            return AbsConst(result)
        # Abstract arguments: coercions preserve structure; numpy ufuncs
        # never branch Python control flow per element, so they fold to
        # a derived value. Anything else seeing a random variable is
        # beyond the analysis.
        if fn in _COERCIONS and len(args) == 1:
            val = args[0]
            aff = _affine_of(val)
            return _derived(val, affine=aff)
        if _is_numpy_callable(fn):
            vals = list(args) + list(kwargs.values())
            if fn is np.asarray and args:
                aff = _affine_of(args[0])
                return _derived(*vals, affine=aff)
            return _derived(*vals)
        if any(_rvs(v) for v in list(args) + list(kwargs.values())):
            raise Inconclusive(
                f"unknown call {getattr(fn, '__name__', fn)!r} receives a "
                f"random variable at line {node.lineno}"
            )
        return _derived(*(list(args) + list(kwargs.values())))

    def sym_app_call(self, args: List[AbsVal], node: ast.AST) -> AbsVal:
        if not args or not _is_concrete(args[0]):
            raise Inconclusive(f"symbolic app with non-constant op at line {node.lineno}")
        op = _concrete(args[0])
        operands = args[1:]
        if all(_is_concrete(v) for v in operands):
            return _derived(*operands)
        if op == "matvec" and len(operands) == 2:
            vec = operands[1]
            if _rvs(vec):
                aff = _affine_of(vec)
                if aff is not None:
                    return _derived(*operands, affine=Affine(aff.uid, "mv"))
            return _derived(*operands)
        if op in ("add", "sub") and len(operands) == 2:
            a, b = operands
            if _rvs(a) and not _rvs(b):
                aff = _affine_of(a)
            elif _rvs(b) and not _rvs(a):
                aff = _affine_of(b)
            else:
                aff = None
            return _derived(*operands, affine=aff)
        if op in ("mul", "div") and len(operands) == 2:
            a, b = operands
            if _rvs(a) and not _rvs(b):
                aff = _affine_of(a)
            elif _rvs(b) and not _rvs(a) and op == "mul":
                aff = _affine_of(b)
            else:
                aff = None
            if aff is not None:
                aff = Affine(aff.uid, aff.kind)
            return _derived(*operands, affine=aff)
        if op == "getitem" and len(operands) == 2:
            base = operands[0]
            if isinstance(base, AbsRV):
                rv = self.record.nodes.get(base.uid)
                if rv is not None and rv.family == "mv_gaussian":
                    return _derived(base, affine=Affine(base.uid, "projection"))
            return _derived(*operands)
        return _derived(*operands)

    # -- the probabilistic operators ----------------------------------

    def ctx_call(self, name: str, node: ast.Call) -> AbsVal:
        args = [self.eval(a) for a in node.args]
        if name == "sample":
            if len(args) != 1 or not isinstance(args[0], AbsDist):
                raise Inconclusive(
                    f"sample of a non-distribution value at line {node.lineno}"
                )
            dist = args[0]
            rv = self.fresh_rv(dist.family, dist.params, node, observe=False)
            self.classify_and_link(rv, dist, node)
            return AbsRV(rv.uid)
        if name == "observe":
            if len(args) != 2 or not isinstance(args[0], AbsDist):
                raise Inconclusive(
                    f"observe of a non-distribution value at line {node.lineno}"
                )
            dist = args[0]
            rv = self.fresh_rv(dist.family, dist.params, node, observe=True)
            rv.observed = True
            rv.realized = True
            self.classify_and_link(rv, dist, node)
            if not rv.parents and self.particle_branch_depth == 0:
                self.diag(
                    UNUSED_OBSERVE,
                    f"observe({dist.family}(...)) conditions no latent "
                    "variable — every particle receives the same weight "
                    "(posterior-neutral)",
                    node,
                )
            return AbsConst(None)
        if name == "value":
            if len(args) != 1:
                raise Inconclusive(f"value() arity at line {node.lineno}")
            val = args[0]
            bases = _rvs(val)
            for uid in bases:
                if uid in self.record.nodes:
                    self.record.nodes[uid].realized = True
            if bases:
                self.record.forced += len(bases)
            if _is_concrete(val):
                return val
            return AbsDerived(forced=True, inputy=_flag(val, "inputy"))
        if name == "factor":
            return AbsConst(None)
        raise Inconclusive(f"unknown ctx operator {name!r} at line {node.lineno}")


# ----------------------------------------------------------------------
# state abstraction across instants
# ----------------------------------------------------------------------

def _flatten_state(val: AbsVal, path: Tuple[int, ...] = ()) -> Dict[Tuple[int, ...], AbsVal]:
    if isinstance(val, AbsTuple):
        out: Dict[Tuple[int, ...], AbsVal] = {}
        for i, e in enumerate(val.elems):
            out.update(_flatten_state(e, path + (i,)))
        return out
    return {path: val}


def _state_signature(slots: Dict[Tuple[int, ...], AbsVal]) -> Tuple:
    sig = []
    for path in sorted(slots):
        val = slots[path]
        if _rvs(val):
            sig.append((path, "rv"))
        elif isinstance(val, AbsConst):
            sig.append((path, "const", repr(val.value)))
        elif _flag(val, "inputy"):
            sig.append((path, "input"))
        else:
            sig.append((path, "derived"))
    return tuple(sig)


def _rebuild_state(
    val: AbsVal,
    carried: Dict[Tuple[int, ...], AbsVal],
    path: Tuple[int, ...] = (),
) -> AbsVal:
    if isinstance(val, AbsTuple):
        return AbsTuple(
            tuple(
                _rebuild_state(e, carried, path + (i,))
                for i, e in enumerate(val.elems)
            )
        )
    return carried.get(path, val)


# ----------------------------------------------------------------------
# the analyzer
# ----------------------------------------------------------------------

class _ModelAnalyzer:
    def __init__(self, model: Any):
        self.model = model
        self.uid_counter = 0
        self.diagnostics: List[Diagnostic] = []
        self._diag_keys: Set[Tuple] = set()
        self.batchable_ok = True
        self.families_by_id = _family_constructors()
        from repro.symbolic import app as sym_app

        self.sym_app = sym_app
        self._load_step()

    # -- source loading ------------------------------------------------

    def _load_step(self) -> None:
        model = self.model
        from repro.runtime.node import FunProbNode

        if isinstance(model, FunProbNode):
            func = model._step_fn
            self.self_value: Optional[AbsVal] = None
        else:
            func = type(model).step
            self.self_value = AbsConst(model)
        func = inspect.unwrap(func)
        if hasattr(func, "__func__"):
            func = func.__func__
        try:
            source = textwrap.dedent(inspect.getsource(func))
            self.file = inspect.getsourcefile(func) or ""
            _, self.first_line = inspect.getsourcelines(func)
        except (OSError, TypeError) as exc:
            raise Inconclusive(f"no source available for step: {exc}")
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise Inconclusive(f"step source does not parse: {exc}")
        if not tree.body or not isinstance(tree.body[0], (ast.FunctionDef, ast.AsyncFunctionDef)):
            raise Inconclusive("step source is not a function definition")
        self.func_def = tree.body[0]
        self.globals = dict(getattr(func, "__globals__", {}))
        try:
            closure = inspect.getclosurevars(func)
            self.globals.update(closure.nonlocals)
        except (TypeError, ValueError):
            pass
        params = [a.arg for a in self.func_def.args.args]
        if self.self_value is not None:
            if not params or params[0] not in ("self",):
                raise Inconclusive("step does not take self")
            params = params[1:]
        if len(params) != 3:
            raise Inconclusive(
                f"step signature has {len(params)} parameters, expected "
                "(state, input, ctx)"
            )
        self.state_param, self.input_param, self.ctx_param = params

    def site(self, node: ast.AST) -> Site:
        line = getattr(node, "lineno", 0)
        return Site(
            name=type(self.model).__name__,
            file=self.file,
            line=self.first_line + line - 1 if line else 0,
        )

    def next_uid(self) -> int:
        self.uid_counter += 1
        return self.uid_counter

    def add_diag(self, diag: Diagnostic) -> None:
        key = (diag.code, diag.site.line, diag.message)
        if key not in self._diag_keys:
            self._diag_keys.add(key)
            self.diagnostics.append(diag)

    # -- abstract stepping ---------------------------------------------

    def run_step(self, state: AbsVal) -> Tuple[AbsVal, AbsVal, _StepRecord]:
        record = _StepRecord()
        env: Dict[str, AbsVal] = {
            self.state_param: state,
            self.input_param: AbsInput(),
            self.ctx_param: _CTX,  # type: ignore[dict-item]
        }
        if self.self_value is not None:
            env["self"] = self.self_value
        # carried markers referenced by the incoming state must be
        # resolvable by uid for family lookups and consumption marking.
        for slot_val in _flatten_state(state).values():
            for uid in _rvs(slot_val):
                if uid in self.carried_nodes:
                    record.nodes[uid] = self.carried_nodes[uid]
        interp = _StepInterpreter(self, env, record)
        try:
            interp.run(self.func_def.body)
            out: AbsVal = AbsConst(None)
        except _Return as ret:
            out = ret.value
        if not isinstance(out, AbsTuple) or len(out.elems) != 2:
            raise Inconclusive("step does not return an (output, state) pair")
        return out.elems[0], out.elems[1], record

    def make_carried(
        self, next_state: AbsVal, record: _StepRecord, prev_state: Optional[AbsVal] = None
    ) -> Tuple[AbsVal, Dict[Tuple[int, ...], int]]:
        """Replace RVs flowing into the state with carried markers.

        Constant slots that change on consecutive instants (step
        counters and the like) are widened to an opaque non-random
        value after the second change, so the state signature can
        reach a fixpoint.
        """
        slots = _flatten_state(next_state)
        prev_slots = _flatten_state(prev_state) if prev_state is not None else {}
        carried_vals: Dict[Tuple[int, ...], AbsVal] = {}
        slot_uids: Dict[Tuple[int, ...], int] = {}
        for path, val in slots.items():
            bases = _rvs(val)
            if not bases:
                if path in self._widened_slots:
                    if isinstance(val, AbsConst):
                        carried_vals[path] = AbsDerived()
                    continue
                prev = prev_slots.get(path)
                if (
                    isinstance(val, AbsConst)
                    and isinstance(prev, AbsConst)
                    and repr(prev.value) != repr(val.value)
                ):
                    self._const_changes[path] = self._const_changes.get(path, 0) + 1
                    if self._const_changes[path] >= 2:
                        self._widened_slots.add(path)
                        carried_vals[path] = AbsDerived()
                continue
            family = ""
            for uid in sorted(bases):
                src = record.nodes.get(uid) or self.carried_nodes.get(uid)
                if src is not None:
                    family = src.family
                    break
            uid = self.next_uid()
            marker = _Node(
                uid=uid,
                name=f"state{list(path)}" if path else "state",
                family=family,
                kind="carried",
                root=False,
                site=Site(name=type(self.model).__name__, file=self.file, line=self.first_line),
                slot=path,
            )
            self.carried_nodes[uid] = marker
            slot_uids[path] = uid
            if isinstance(val, AbsRV):
                carried_vals[path] = AbsRV(uid)
            else:
                carried_vals[path] = AbsDerived(
                    rvs=frozenset((uid,)),
                    forced=_flag(val, "forced"),
                    inputy=_flag(val, "inputy"),
                )
        return _rebuild_state(next_state, carried_vals), slot_uids

    # -- the full analysis ---------------------------------------------

    def analyze(self) -> ModelAnalysis:
        from repro.delayed.detect import BATCHABLE_FAMILIES

        self.carried_nodes: Dict[int, _Node] = {}
        self._const_changes: Dict[Tuple[int, ...], int] = {}
        self._widened_slots: Set[Tuple[int, ...]] = set()
        init_state = _to_abstract(self.model.init())

        families: Set[str] = set()
        max_roots = 0
        state = init_state
        slot_uids: Dict[Tuple[int, ...], int] = {}
        prev_sig = None
        steady_record: Optional[_StepRecord] = None
        steady_next: Optional[AbsVal] = None
        steady_slot_uids: Dict[Tuple[int, ...], int] = {}
        slot_names: Dict[Tuple[int, ...], str] = {}
        anc: Dict[Tuple[int, ...], Set[Tuple[int, ...]]] = {}

        for _ in range(MAX_ABSTRACT_STEPS):
            _, next_state, record = self.run_step(state)
            families |= record.families
            max_roots = max(max_roots, record.roots)
            slots = _flatten_state(next_state)
            sig = _state_signature(slots)

            # slot-level ancestry: which slots' variables live in the
            # transitive past of each slot's current variable.
            new_anc: Dict[Tuple[int, ...], Set[Tuple[int, ...]]] = {}
            uid_to_slot = {uid: path for path, uid in slot_uids.items()}
            fresh_to_slot: Dict[int, Tuple[int, ...]] = {}
            for path, val in slots.items():
                for uid in _rvs(val):
                    if uid in record.nodes and record.nodes[uid].kind != "carried":
                        fresh_to_slot.setdefault(uid, path)
            for path, val in slots.items():
                acc: Set[Tuple[int, ...]] = set()
                for uid in _rvs(val):
                    if uid in uid_to_slot:  # carried marker moving slots
                        src = uid_to_slot[uid]
                        acc |= {src} | anc.get(src, set())
                    elif uid in record.nodes:  # fresh variable
                        for carried_slot in record.carried_ancestors(uid):
                            acc |= {carried_slot} | anc.get(carried_slot, set())
                        for parent_uid in record.nodes[uid].parents:
                            parent_slot = fresh_to_slot.get(parent_uid)
                            if parent_slot is not None and parent_slot != path:
                                acc.add(parent_slot)
                new_anc[path] = acc
            anc = new_anc

            for path, val in slots.items():
                if path not in slot_names:
                    for uid in _rvs(val):
                        node = record.nodes.get(uid)
                        if node is not None and node.kind != "carried":
                            slot_names[path] = node.name
                            break

            if sig == prev_sig:
                steady_record = record
                steady_next = next_state
                steady_slot_uids = dict(slot_uids)
                break
            prev_sig = sig
            state, slot_uids = self.make_carried(next_state, record, state)
        else:
            raise Inconclusive(
                f"state structure did not stabilize within {MAX_ABSTRACT_STEPS} instants"
            )

        bounded = self._check_bounded(
            steady_record, steady_next, steady_slot_uids, anc, slot_names
        )

        for family in sorted(families - BATCHABLE_FAMILIES):
            self.add_diag(
                make_diagnostic(
                    NONBATCHABLE_FAMILY,
                    f"family {family!r} has no batched kernels — the model "
                    "cannot run on the vectorized DS graph",
                    Site(name=type(self.model).__name__, file=self.file, line=self.first_line),
                )
            )

        batchable = (
            self.batchable_ok and bool(families) and families <= BATCHABLE_FAMILIES
        )
        shape = "tree" if max_roots >= 2 else "chain"
        nodes = tuple(
            RVNode(n.uid, n.name, n.family, n.kind, n.root, n.site)
            for n in steady_record.nodes.values()
        )
        graph = StepGraph(
            nodes=nodes,
            edges=tuple(steady_record.edges),
            observed=tuple(u for u, n in steady_record.nodes.items() if n.observed),
            realized=tuple(u for u, n in steady_record.nodes.items() if n.realized),
            sample_roots=max_roots,
        )
        return ModelAnalysis(
            conclusive=True,
            batchable=batchable,
            bounded=bounded,
            families=frozenset(families),
            shape=shape,
            forced=steady_record.forced,
            step_graph=graph,
            realize_sites=tuple(steady_record.realize_sites),
            diagnostics=tuple(self.diagnostics),
            name=type(self.model).__name__,
        )

    def _check_bounded(
        self,
        record: _StepRecord,
        next_state: AbsVal,
        slot_uids: Dict[Tuple[int, ...], int],
        anc: Dict[Tuple[int, ...], Set[Tuple[int, ...]]],
        slot_names: Dict[Tuple[int, ...], str],
    ) -> bool:
        slots = _flatten_state(next_state)
        uid_to_slot = {uid: path for path, uid in slot_uids.items()}
        # shift map: carried variable of slot p lands in slots succ[p]
        succ: Dict[Tuple[int, ...], Set[Tuple[int, ...]]] = {}
        chain_slots: Set[Tuple[int, ...]] = set()
        for path, val in slots.items():
            for uid in _rvs(val):
                if uid in uid_to_slot:
                    succ.setdefault(uid_to_slot[uid], set()).add(path)
                elif uid in record.nodes and record.nodes[uid].kind != "carried":
                    chain_slots.add(path)

        def slot_consumed(path: Tuple[int, ...]) -> bool:
            uid = slot_uids.get(path)
            return uid is not None and record.consumed(uid)

        def eventually_consumed(start: Set[Tuple[int, ...]]) -> bool:
            seen: Set[Tuple[int, ...]] = set()
            frontier = set(start)
            while frontier:
                frontier -= seen
                if not frontier:
                    break
                if any(slot_consumed(p) for p in frontier):
                    return True
                seen |= frontier
                nxt: Set[Tuple[int, ...]] = set()
                for p in frontier:
                    nxt |= succ.get(p, set())
                frontier = nxt
            return False

        bounded = True
        name = type(self.model).__name__

        # fresh sampled variables must be consumed, now or after a
        # bounded number of state shifts.
        for uid, node in record.nodes.items():
            if node.kind != "sample":
                continue
            if record.consumed(uid):
                continue
            dest = {p for p, v in slots.items() if uid in _rvs(v)}
            if not dest:
                self.add_diag(
                    make_diagnostic(
                        DANGLING_RV,
                        f"sampled variable {node.name!r} is never observed, "
                        "realized, or carried — a dead draw",
                        node.site,
                    )
                )
                continue
            if not eventually_consumed(dest):
                bounded = False
                slot_desc = " -> ".join(
                    "state" + str(list(p)) if p else "state" for p in sorted(dest)
                )
                self.add_diag(
                    make_diagnostic(
                        UNBOUNDED_MEMORY,
                        f"sampled variable {node.name!r} is never observed or "
                        f"realized on the {slot_desc} step edge — the "
                        "delayed-sampling graph grows by one node per instant",
                        node.site,
                    )
                )

        # persistent never-consumed variables that anchor a growing chain
        # (the hmm_init pathology).
        for path, uid in slot_uids.items():
            if path not in succ or path not in succ.get(path, set()):
                # not persistent in place; shifts handled above
                if path not in succ:
                    continue
            if slot_consumed(path) or eventually_consumed({path}):
                continue
            anchored = [q for q in chain_slots if path in anc.get(q, set())]
            var = slot_names.get(path, "state" + str(list(path)))
            site = Site(name=name, file=self.file, line=self.first_line)
            if anchored:
                bounded = False
                chain_desc = ", ".join(
                    slot_names.get(q, "state" + str(list(q))) for q in anchored
                )
                self.add_diag(
                    make_diagnostic(
                        UNBOUNDED_MEMORY,
                        f"variable {var!r} is kept in the stream state but "
                        "never observed or realized, and it anchors the "
                        f"history of the growing chain ({chain_desc}) — the "
                        "graph cannot collect the chain past an unrealized "
                        "ancestor (the hmm_init pathology of Section 5.3)",
                        site,
                    )
                )
            else:
                self.add_diag(
                    make_diagnostic(
                        DANGLING_RV,
                        f"variable {var!r} is kept in the stream state forever "
                        "but never observed or realized — one permanent graph "
                        "node (bound the window with value() if intentional)",
                        site,
                    )
                )
        return bounded


def analyze_model(model: Any) -> ModelAnalysis:
    """Statically analyze a :class:`~repro.runtime.node.ProbNode` instance.

    Returns a :class:`~repro.analysis.report.ModelAnalysis`. Never
    raises for analysis-related reasons: models the interpreter cannot
    see through come back with ``conclusive=False`` and a ``reason``
    (the caller decides whether to fall back to the runtime probe,
    :func:`repro.delayed.detect.probe_ds_structure`).
    """
    name = type(model).__name__
    try:
        analyzer = _ModelAnalyzer(model)
        return analyzer.analyze()
    except Inconclusive as exc:
        return ModelAnalysis(conclusive=False, reason=str(exc), name=name)
    except RecursionError:
        return ModelAnalysis(conclusive=False, reason="analysis recursion limit", name=name)
    except Exception as exc:  # pragma: no cover - defensive
        return ModelAnalysis(
            conclusive=False,
            reason=f"analysis failed with {type(exc).__name__}: {exc}",
            name=name,
        )
