"""``repro.analysis.lint`` — the programmatic face of ``replint``.

Three kinds of target, one diagnostic stream:

* **Python models** (:func:`lint_model`) — any
  :class:`~repro.runtime.node.ProbNode` instance, analyzed by the
  Python abstract interpreter.
* **Surface programs** (:func:`lint_source`, :func:`lint_path`) —
  ``.zls`` files in the paper's concrete syntax, or ``.py`` files whose
  module-level string literals contain surface programs (the style of
  ``examples/surface_language.py``). Python files are *parsed, never
  executed*: string constants that parse as a surface program are
  linted, everything else is ignored.
* **Registered bench models** (:func:`lint_bench_models`) — every
  model the benchmark layer registers with the vectorized backend,
  analyzed as Python models.

Every function returns :class:`~repro.analysis.report.Diagnostic`
records (or a ``{name: ModelAnalysis}`` map for the bench models);
:func:`lint_report` aggregates any mix of targets into the JSON
document the CLI emits with ``--format=json``.
"""

from __future__ import annotations

import ast as python_ast
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.analysis.absint import analyze_model
from repro.analysis.core_ast import analyze_program
from repro.analysis.report import Diagnostic, ModelAnalysis

__all__ = [
    "lint_model",
    "lint_source",
    "lint_path",
    "lint_paths",
    "lint_bench_models",
    "bench_model_instances",
    "lint_report",
    "extract_surface_sources",
]


def lint_model(model: Any, name: str = "") -> List[Diagnostic]:
    """Diagnostics of one Python model instance."""
    analysis = analyze_model(model)
    return list(analysis.diagnostics)


def lint_source(source: str, file: str = "<string>") -> List[Diagnostic]:
    """Diagnostics of a surface-syntax program."""
    from repro.frontend import parse_program

    program = parse_program(source)
    diags: List[Diagnostic] = []
    for analysis in analyze_program(program, file=file).values():
        diags.extend(analysis.diagnostics)
    return diags


def extract_surface_sources(py_source: str) -> List[Tuple[int, str]]:
    """Module-level string literals of a Python file that parse as
    surface programs.

    Returns ``(lineno, source)`` pairs. The Python file is parsed with
    :mod:`ast`, never imported or executed; a string constant counts
    when it contains ``let node`` and the frontend accepts it.
    """
    from repro.frontend import parse_program

    out: List[Tuple[int, str]] = []
    try:
        tree = python_ast.parse(py_source)
    except SyntaxError:
        return out
    for node in python_ast.walk(tree):
        if not (isinstance(node, python_ast.Constant) and isinstance(node.value, str)):
            continue
        text = node.value
        if "let node" not in text:
            continue
        try:
            parse_program(text)
        except Exception:
            continue
        out.append((getattr(node, "lineno", 0), text))
    return out


def lint_path(path: str) -> List[Diagnostic]:
    """Diagnostics of one file: ``.zls`` surface syntax, or ``.py``
    with embedded surface-program string literals."""
    with open(path, "r", encoding="utf-8") as fh:
        text = fh.read()
    rel = os.path.relpath(path)
    if path.endswith(".py"):
        diags: List[Diagnostic] = []
        for _, source in extract_surface_sources(text):
            diags.extend(lint_source(source, file=rel))
        return diags
    return lint_source(text, file=rel)


def lint_paths(paths: Sequence[str]) -> List[Diagnostic]:
    diags: List[Diagnostic] = []
    for path in paths:
        diags.extend(lint_path(path))
    return diags


def bench_model_instances() -> Dict[str, Any]:
    """One instance of every model the benchmark layer registers with
    the vectorized backend (plus the raw scalar models they adapt)."""
    from repro.bench.models import (
        BoundedWalkModel,
        CoinModel,
        DirichletCategoricalModel,
        HmmInitModel,
        HmmModel,
        KalmanModel,
        MixedFragmentModel,
        OutlierModel,
        PoissonCountModel,
        WalkModel,
    )
    from repro.bench.robot import RobotModel
    from repro.vectorized.models import GraphOutlierModel

    return {
        "KalmanModel": KalmanModel(),
        "HmmModel": HmmModel(),
        "CoinModel": CoinModel(),
        "OutlierModel": OutlierModel(),
        "GraphOutlierModel": GraphOutlierModel(OutlierModel()),
        "HmmInitModel": HmmInitModel(),
        "WalkModel": WalkModel(),
        "BoundedWalkModel": BoundedWalkModel(),
        "PoissonCountModel": PoissonCountModel(),
        "DirichletCategoricalModel": DirichletCategoricalModel(),
        "MixedFragmentModel(realize=none)": MixedFragmentModel(realize="none"),
        "MixedFragmentModel(realize=one)": MixedFragmentModel(realize="one"),
        "MixedFragmentModel(realize=all)": MixedFragmentModel(realize="all"),
        "RobotModel": RobotModel(),
    }


def lint_bench_models() -> Dict[str, ModelAnalysis]:
    """Static analysis of every registered bench model."""
    return {
        name: analyze_model(model)
        for name, model in bench_model_instances().items()
    }


def lint_report(
    paths: Sequence[str] = (),
    bench_models: bool = False,
    extra_diagnostics: Optional[Sequence[Diagnostic]] = None,
) -> dict:
    """The aggregated JSON document behind ``replint --format=json``."""
    diagnostics: List[Diagnostic] = []
    files: List[dict] = []
    for path in paths:
        file_diags = lint_path(path)
        diagnostics.extend(file_diags)
        files.append(
            {
                "path": os.path.relpath(path),
                "diagnostics": [d.as_dict() for d in file_diags],
            }
        )
    models: List[dict] = []
    if bench_models:
        for name, analysis in lint_bench_models().items():
            diagnostics.extend(analysis.diagnostics)
            models.append(
                {
                    "model": name,
                    "verdict": analysis.verdict,
                    "conclusive": analysis.conclusive,
                    "batchable": analysis.batchable,
                    "bounded": analysis.bounded,
                    "families": sorted(analysis.families),
                    "shape": analysis.shape,
                    "forced": analysis.forced,
                    "reason": analysis.reason,
                    "diagnostics": [d.as_dict() for d in analysis.diagnostics],
                }
            )
    if extra_diagnostics:
        diagnostics.extend(extra_diagnostics)
    n_errors = sum(1 for d in diagnostics if d.severity == "error")
    n_warnings = sum(1 for d in diagnostics if d.severity == "warning")
    return {
        "tool": "replint",
        "files": files,
        "bench_models": models,
        "summary": {
            "errors": n_errors,
            "warnings": n_warnings,
            "total": len(diagnostics),
        },
        "diagnostics": [d.as_dict() for d in diagnostics],
    }
