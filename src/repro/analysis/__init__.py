"""Ahead-of-time model analysis.

A static dataflow analysis over compiled programs that answers, without
executing the model, the questions the runtime otherwise discovers the
hard way:

* **Bounded memory** — does the delayed-sampling graph stay
  pointer-minimal across instants, or does some sampled variable
  anchor a chain that grows forever (the paper's ``hmm_init`` / random
  ``walk`` pathologies)?
* **Batchability** — do all conditioning edges fall in the conjugate
  fragment the batched runtime implements (affine-Gaussian,
  projections, mv-affine, Beta–Bernoulli, Gamma–Poisson,
  Dirichlet–Categorical), and does control flow stay in lockstep
  across particles?
* **Lint** — machine-readable diagnostics (``REP001``–``REP009``) via
  the :mod:`repro.analysis.lint` API and the ``replint`` CLI.

Three frontends share one verdict type (:class:`ModelAnalysis`):
:func:`analyze_model` interprets Python step functions abstractly,
:func:`analyze_program` / :func:`analyze_node` walk compiled
kernel-AST programs, and :func:`analyze_muf_term` gives muF terms a
structural pass. :func:`analysis_for` adds caching and
:func:`consult_for_backend` turns the verdict into a routing decision
for ``infer(..., backend="auto")``.
"""

from repro.analysis.absint import analyze_model
from repro.analysis.core_ast import (
    analyze_muf_term,
    analyze_node,
    analyze_program,
    lint_program,
)
from repro.analysis.lint import (
    lint_bench_models,
    lint_model,
    lint_path,
    lint_paths,
    lint_report,
    lint_source,
)
from repro.analysis.report import (
    DANGLING_RV,
    DIAGNOSTIC_CODES,
    LOCKSTEP_BRANCH,
    NONBATCHABLE_FAMILY,
    NONCONJUGATE_EDGE,
    SYMBOLIC_BRANCH,
    UNBOUNDED_MEMORY,
    UNGUARDED_LAST,
    UNREACHABLE_INIT,
    UNUSED_OBSERVE,
    Diagnostic,
    EdgeInfo,
    ModelAnalysis,
    RVNode,
    Site,
    StepGraph,
)
from repro.analysis.routing import (
    analysis_for,
    clear_analysis_cache,
    consult_for_backend,
    record_verdict,
)

__all__ = [
    "analyze_model",
    "analyze_node",
    "analyze_program",
    "analyze_muf_term",
    "lint_program",
    "lint_model",
    "lint_source",
    "lint_path",
    "lint_paths",
    "lint_bench_models",
    "lint_report",
    "analysis_for",
    "consult_for_backend",
    "record_verdict",
    "clear_analysis_cache",
    "ModelAnalysis",
    "Diagnostic",
    "Site",
    "RVNode",
    "EdgeInfo",
    "StepGraph",
    "DIAGNOSTIC_CODES",
    "UNBOUNDED_MEMORY",
    "LOCKSTEP_BRANCH",
    "NONCONJUGATE_EDGE",
    "NONBATCHABLE_FAMILY",
    "UNUSED_OBSERVE",
    "UNREACHABLE_INIT",
    "UNGUARDED_LAST",
    "DANGLING_RV",
    "SYMBOLIC_BRANCH",
]
