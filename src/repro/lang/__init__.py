"""Model-facing vocabulary: lifted distribution constructors."""

from repro.lang.lifted import (
    SymDist,
    bernoulli,
    beta,
    binomial,
    categorical,
    delta,
    dirichlet,
    exponential,
    gamma,
    gaussian,
    inverse_gamma,
    mv_gaussian,
    poisson,
    uniform,
)

__all__ = [
    "SymDist",
    "gaussian",
    "mv_gaussian",
    "beta",
    "bernoulli",
    "binomial",
    "gamma",
    "inverse_gamma",
    "poisson",
    "exponential",
    "uniform",
    "categorical",
    "dirichlet",
    "delta",
]
