"""Lifted distribution constructors for model code.

Model programs build distributions with these helpers instead of the raw
classes in :mod:`repro.dists`. When every parameter is concrete the
helper returns the concrete distribution directly; when a parameter is a
symbolic expression (a delayed-sampling random variable, or arithmetic
over one) the helper returns a :class:`SymDist` — an *unevaluated*
distribution term that the delayed-sampling ``assume`` inspects for
conjugacy (Section 5.2).

This mirrors ProbZelus, where ``gaussian (pre x, speed_x)`` is a symbolic
term under delayed sampling and a plain distribution under the particle
filter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Tuple

import numpy as np

from repro.dists import (
    Bernoulli,
    Beta,
    Binomial,
    Categorical,
    Delta,
    Dirichlet,
    Distribution,
    Exponential,
    Gamma,
    Gaussian,
    InverseGamma,
    MvGaussian,
    Poisson,
    Uniform,
)
from repro.symbolic import is_symbolic

__all__ = [
    "SymDist",
    "gaussian",
    "mv_gaussian",
    "beta",
    "bernoulli",
    "binomial",
    "gamma",
    "inverse_gamma",
    "poisson",
    "exponential",
    "uniform",
    "categorical",
    "dirichlet",
    "delta",
]


@dataclass(frozen=True)
class SymDist:
    """An unevaluated distribution whose parameters are symbolic.

    ``kind`` names the family ("gaussian", "bernoulli", ...); ``params``
    holds the (possibly symbolic) parameter expressions in family order.
    """

    kind: str
    params: Tuple[Any, ...]

    def __repr__(self) -> str:
        return f"SymDist({self.kind}, {self.params!r})"


def _lift(kind: str, concrete, *params: Any):
    if any(is_symbolic(p) for p in params):
        return SymDist(kind, tuple(params))
    return concrete(*params)


def gaussian(mu: Any, var: Any) -> Any:
    """``N(mu, var)`` — variance parameterization, as in the paper."""
    return _lift("gaussian", Gaussian, mu, var)


def mv_gaussian(mu: Any, cov: Any) -> Any:
    """Multivariate normal ``N(mu, cov)``."""
    return _lift("mv_gaussian", MvGaussian, mu, cov)


def beta(alpha: Any, b: Any) -> Any:
    """Beta distribution ``Beta(alpha, b)``."""
    return _lift("beta", Beta, alpha, b)


def bernoulli(p: Any) -> Any:
    """Bernoulli distribution with success probability ``p``."""
    return _lift("bernoulli", Bernoulli, p)


def binomial(n: Any, p: Any) -> Any:
    """Binomial distribution over ``n`` trials."""
    return _lift("binomial", Binomial, n, p)


def gamma(shape: Any, rate: Any) -> Any:
    """Gamma distribution with ``shape`` and ``rate``."""
    return _lift("gamma", Gamma, shape, rate)


def inverse_gamma(shape: Any, scale: Any) -> Any:
    """Inverse-Gamma distribution (conjugate prior of a Gaussian variance)."""
    return _lift("inverse_gamma", InverseGamma, shape, scale)


def poisson(lam: Any) -> Any:
    """Poisson distribution with rate ``lam``."""
    return _lift("poisson", Poisson, lam)


def exponential(rate: Any) -> Any:
    """Exponential distribution with rate ``rate``."""
    return _lift("exponential", Exponential, rate)


def uniform(lo: Any, hi: Any) -> Any:
    """Uniform distribution on ``[lo, hi]``."""
    return _lift("uniform", Uniform, lo, hi)


def categorical(probs: Any) -> Any:
    """Categorical distribution over ``len(probs)`` classes."""
    if is_symbolic(probs):
        return SymDist("categorical", (probs,))
    return Categorical(np.asarray(probs, dtype=float))


def dirichlet(alpha: Any) -> Any:
    """Dirichlet distribution with concentration ``alpha``."""
    if is_symbolic(alpha):
        return SymDist("dirichlet", (alpha,))
    return Dirichlet(np.asarray(alpha, dtype=float))


def delta(value: Any) -> Any:
    """Dirac distribution on ``value`` (symbolic values stay symbolic)."""
    if is_symbolic(value):
        return SymDist("delta", (value,))
    return Delta(value)
