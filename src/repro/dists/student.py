"""Inverse-Gamma and Student-t distributions.

Support for the unknown-variance Gaussian conjugacy: with
``sigma2 ~ InverseGamma(a, b)`` and ``x | sigma2 ~ N(mu, sigma2)``, the
marginal of ``x`` is a location-scale Student-t and the posterior of
``sigma2`` given ``x`` is again inverse-Gamma — an extension beyond the
paper's evaluated families, exercised by the delayed-sampling graph
exactly like the others.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import ScalarDistribution, require_positive
from repro.errors import DistributionError

__all__ = ["InverseGamma", "StudentT"]


class InverseGamma(ScalarDistribution):
    """Inverse-Gamma distribution with ``shape`` and ``scale``."""

    __slots__ = ("shape", "scale")

    def __init__(self, shape: float, scale: float):
        self.shape = require_positive("shape", shape)
        self.scale = require_positive("scale", scale)

    def sample(self, rng: np.random.Generator) -> float:
        return self.scale / rng.gamma(self.shape, 1.0)

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if value <= 0.0:
            return -math.inf
        return (
            self.shape * math.log(self.scale)
            - math.lgamma(self.shape)
            - (self.shape + 1.0) * math.log(value)
            - self.scale / value
        )

    def mean(self) -> float:
        if self.shape <= 1.0:
            raise DistributionError("InverseGamma mean undefined for shape <= 1")
        return self.scale / (self.shape - 1.0)

    def variance(self) -> float:
        if self.shape <= 2.0:
            raise DistributionError("InverseGamma variance undefined for shape <= 2")
        denom = (self.shape - 1.0) ** 2 * (self.shape - 2.0)
        return self.scale * self.scale / denom

    def with_observation_sq(self, squared_residual: float) -> "InverseGamma":
        """Posterior after one Gaussian observation with this variance."""
        return InverseGamma(self.shape + 0.5, self.scale + 0.5 * squared_residual)

    def __repr__(self) -> str:
        return f"InverseGamma(shape={self.shape:.6g}, scale={self.scale:.6g})"


class StudentT(ScalarDistribution):
    """Location-scale Student-t with ``df`` degrees of freedom."""

    __slots__ = ("df", "loc", "scale")

    def __init__(self, df: float, loc: float = 0.0, scale: float = 1.0):
        self.df = require_positive("df", df)
        self.loc = float(loc)
        self.scale = require_positive("scale", scale)

    def sample(self, rng: np.random.Generator) -> float:
        return self.loc + self.scale * rng.standard_t(self.df)

    def log_pdf(self, value: float) -> float:
        z = (float(value) - self.loc) / self.scale
        half = 0.5 * (self.df + 1.0)
        return (
            math.lgamma(half)
            - math.lgamma(0.5 * self.df)
            - 0.5 * math.log(self.df * math.pi)
            - math.log(self.scale)
            - half * math.log1p(z * z / self.df)
        )

    def mean(self) -> float:
        if self.df <= 1.0:
            raise DistributionError("StudentT mean undefined for df <= 1")
        return self.loc

    def variance(self) -> float:
        if self.df <= 2.0:
            raise DistributionError("StudentT variance undefined for df <= 2")
        return self.scale * self.scale * self.df / (self.df - 2.0)

    def __repr__(self) -> str:
        return (
            f"StudentT(df={self.df:.6g}, loc={self.loc:.6g}, "
            f"scale={self.scale:.6g})"
        )
