"""Bernoulli and Binomial distributions.

The Bernoulli drives the Coin benchmark observations and the Outlier
benchmark's outlier indicator. Binomial is included for the Beta-Binomial
conjugacy extension.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import Distribution, require_prob
from repro.errors import DistributionError

__all__ = ["Bernoulli", "Binomial"]


class Bernoulli(Distribution):
    """Bernoulli distribution over ``{False, True}`` with success probability ``p``."""

    __slots__ = ("p",)

    def __init__(self, p: float):
        self.p = require_prob("p", p)

    def sample(self, rng: np.random.Generator) -> bool:
        return bool(rng.random() < self.p)

    def log_pdf(self, value) -> float:
        success = bool(value)
        prob = self.p if success else 1.0 - self.p
        if prob == 0.0:
            return -math.inf
        return math.log(prob)

    def mean(self) -> float:
        return self.p

    def variance(self) -> float:
        return self.p * (1.0 - self.p)

    def __repr__(self) -> str:
        return f"Bernoulli(p={self.p:.6g})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Bernoulli) and self.p == other.p

    def __hash__(self) -> int:
        return hash(("Bernoulli", self.p))


class Binomial(Distribution):
    """Binomial distribution: number of successes in ``n`` trials of prob ``p``."""

    __slots__ = ("n", "p")

    def __init__(self, n: int, p: float):
        if int(n) != n or n < 0:
            raise DistributionError(f"n must be a non-negative integer, got {n!r}")
        self.n = int(n)
        self.p = require_prob("p", p)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.binomial(self.n, self.p))

    def log_pdf(self, value) -> float:
        k = int(value)
        if k < 0 or k > self.n:
            return -math.inf
        log_comb = (
            math.lgamma(self.n + 1) - math.lgamma(k + 1) - math.lgamma(self.n - k + 1)
        )
        if self.p == 0.0:
            return 0.0 if k == 0 else -math.inf
        if self.p == 1.0:
            return 0.0 if k == self.n else -math.inf
        return log_comb + k * math.log(self.p) + (self.n - k) * math.log1p(-self.p)

    def mean(self) -> float:
        return self.n * self.p

    def variance(self) -> float:
        return self.n * self.p * (1.0 - self.p)

    def __repr__(self) -> str:
        return f"Binomial(n={self.n}, p={self.p:.6g})"
