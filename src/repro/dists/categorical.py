"""Categorical, Dirichlet, and Empirical distributions.

The empirical (weighted support) distribution is the output of the
importance sampler and the particle filter: the paper's ``infer``
"normalizes results into a categorical distribution, i.e., a discrete
distribution over the results" (Section 5.1).
"""

from __future__ import annotations

import math
from typing import Any, Sequence

import numpy as np

from repro.dists.base import Distribution
from repro.errors import DistributionError

__all__ = ["Categorical", "Dirichlet", "Empirical"]


class Categorical(Distribution):
    """Distribution over integer categories ``0..k-1`` with probabilities ``probs``."""

    __slots__ = ("probs",)

    def __init__(self, probs: Sequence[float]):
        probs = np.asarray(probs, dtype=float)
        if probs.ndim != 1 or probs.size == 0:
            raise DistributionError("probs must be a non-empty vector")
        if np.any(probs < 0):
            raise DistributionError("probs must be non-negative")
        total = probs.sum()
        if not total > 0:
            raise DistributionError("probs must not all be zero")
        self.probs = probs / total
        self.probs.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.choice(self.probs.size, p=self.probs))

    def log_pdf(self, value) -> float:
        k = int(value)
        if not 0 <= k < self.probs.size:
            return -math.inf
        p = self.probs[k]
        return math.log(p) if p > 0 else -math.inf

    def mean(self) -> float:
        return float(np.dot(np.arange(self.probs.size), self.probs))

    def variance(self) -> float:
        idx = np.arange(self.probs.size)
        mean = self.mean()
        return float(np.dot((idx - mean) ** 2, self.probs))

    def memory_words(self) -> int:
        return 2 + self.probs.size

    def __repr__(self) -> str:
        return f"Categorical(k={self.probs.size})"


class Dirichlet(Distribution):
    """Dirichlet distribution over the probability simplex."""

    __slots__ = ("alpha",)

    def __init__(self, alpha: Sequence[float]):
        alpha = np.asarray(alpha, dtype=float)
        if alpha.ndim != 1 or alpha.size < 2:
            raise DistributionError("alpha must be a vector of length >= 2")
        if np.any(alpha <= 0):
            raise DistributionError("alpha entries must be > 0")
        self.alpha = alpha
        self.alpha.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.dirichlet(self.alpha)

    def log_pdf(self, value) -> float:
        value = np.asarray(value, dtype=float)
        if value.shape != self.alpha.shape:
            return -math.inf
        if np.any(value < 0) or not np.isclose(value.sum(), 1.0, atol=1e-8):
            return -math.inf
        with np.errstate(divide="ignore"):
            logs = np.where(value > 0, np.log(value), -np.inf)
        if np.any(np.isneginf(logs) & (self.alpha > 1)):
            return -math.inf
        log_norm = math.lgamma(self.alpha.sum()) - sum(
            math.lgamma(a) for a in self.alpha
        )
        return float(log_norm + np.sum((self.alpha - 1.0) * logs))

    def mean(self) -> np.ndarray:
        return self.alpha / self.alpha.sum()

    def variance(self) -> np.ndarray:
        total = self.alpha.sum()
        mean = self.alpha / total
        return mean * (1.0 - mean) / (total + 1.0)

    def with_count(self, category: int) -> "Dirichlet":
        """Posterior after one categorical observation of ``category``."""
        alpha = self.alpha.copy()
        alpha[category] += 1.0
        return Dirichlet(alpha)

    def memory_words(self) -> int:
        return 2 + self.alpha.size

    def __repr__(self) -> str:
        return f"Dirichlet(k={self.alpha.size})"


class Empirical(Distribution):
    """Weighted empirical distribution over arbitrary support values.

    This is the categorical-over-results representation returned by the
    sampling-based engines. ``values`` may hold floats, arrays, tuples —
    whatever the model outputs.
    """

    __slots__ = ("values", "weights")

    def __init__(self, values: Sequence[Any], weights: Sequence[float] = None):
        values = list(values)
        if not values:
            raise DistributionError("empirical distribution needs at least one value")
        if weights is None:
            weights = np.full(len(values), 1.0 / len(values))
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.size != len(values):
                raise DistributionError("values and weights must have equal length")
            if np.any(weights < 0):
                raise DistributionError("weights must be non-negative")
            total = weights.sum()
            if not total > 0:
                raise DistributionError("weights must not all be zero")
            weights = weights / total
        self.values = values
        self.weights = weights
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> Any:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return self.values[idx]

    def log_pdf(self, value: Any) -> float:
        mass = 0.0
        for v, w in zip(self.values, self.weights):
            if isinstance(v, np.ndarray) or isinstance(value, np.ndarray):
                if np.array_equal(np.asarray(v), np.asarray(value)):
                    mass += w
            elif v == value:
                mass += w
        return math.log(mass) if mass > 0 else -math.inf

    def mean(self) -> Any:
        acc = None
        for v, w in zip(self.values, self.weights):
            term = np.asarray(v, dtype=float) * w
            acc = term if acc is None else acc + term
        if acc is not None and acc.ndim == 0:
            return float(acc)
        return acc

    def variance(self) -> Any:
        mean = self.mean()
        acc = None
        for v, w in zip(self.values, self.weights):
            diff = np.asarray(v, dtype=float) - mean
            term = w * diff * diff
            acc = term if acc is None else acc + term
        if acc is not None and acc.ndim == 0:
            return float(acc)
        return acc

    def memory_words(self) -> int:
        return 2 + 2 * len(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Empirical(n={len(self.values)})"
