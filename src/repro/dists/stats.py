"""Distribution statistics helpers.

The paper's robot controller uses ``probability(p_dist, target, epsilon)``
— the posterior probability that the position lies within ``epsilon`` of
the target — to decide a mode switch (Fig. 5). These helpers compute
interval probabilities and CDFs across the distribution zoo, including
the mixtures produced by SDS.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dists.base import Distribution
from repro.dists.categorical import Empirical
from repro.dists.gaussian import Gaussian
from repro.dists.mixture import Mixture
from repro.dists.simple import Delta, Uniform
from repro.errors import DistributionError

__all__ = ["cdf", "prob_in_interval", "probability"]


def cdf(dist: Distribution, x: float) -> float:
    """P(X <= x) for scalar distributions."""
    if isinstance(dist, Gaussian):
        z = (float(x) - dist.mu) / math.sqrt(2.0 * dist.var)
        return 0.5 * (1.0 + math.erf(z))
    if isinstance(dist, Uniform):
        if x < dist.lo:
            return 0.0
        if x > dist.hi:
            return 1.0
        return (float(x) - dist.lo) / (dist.hi - dist.lo)
    if isinstance(dist, Delta):
        return 1.0 if float(np.asarray(dist.value)) <= float(x) else 0.0
    if isinstance(dist, Empirical):
        mass = 0.0
        for value, weight in zip(dist.values, dist.weights):
            if float(np.asarray(value)) <= float(x):
                mass += weight
        return float(mass)
    if isinstance(dist, Mixture):
        return float(
            sum(w * cdf(c, x) for c, w in zip(dist.components, dist.weights))
        )
    # Distributions outside this module's zoo (e.g. the array-backed
    # posteriors of repro.vectorized) provide their own ``cdf`` method.
    own_cdf = getattr(dist, "cdf", None)
    if callable(own_cdf):
        return float(own_cdf(x))
    raise DistributionError(f"cdf not available for {type(dist).__name__}")


def prob_in_interval(dist: Distribution, lo: float, hi: float) -> float:
    """P(lo <= X <= hi)."""
    if hi < lo:
        raise DistributionError("interval bounds out of order")
    return max(0.0, cdf(dist, hi) - cdf(dist, lo))


def probability(dist: Distribution, target: float, epsilon: float) -> float:
    """The paper's ``probability(p_dist, target, epsilon)``.

    Posterior probability that the value lies in
    ``[target - epsilon, target + epsilon]``.
    """
    return prob_in_interval(dist, target - epsilon, target + epsilon)
