"""Beta distribution.

Prior of the Coin benchmark (Appendix B.2) and of the Outlier benchmark's
invalid-reading probability (Appendix B.3). Conjugate to Bernoulli and
Binomial likelihoods via ``repro.delayed.conjugacy``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import ScalarDistribution, require_positive

__all__ = ["Beta"]


class Beta(ScalarDistribution):
    """Beta distribution with shape parameters ``alpha``, ``beta``."""

    __slots__ = ("alpha", "beta")

    def __init__(self, alpha: float, beta: float):
        self.alpha = require_positive("alpha", alpha)
        self.beta = require_positive("beta", beta)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.beta(self.alpha, self.beta)

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if not 0.0 < value < 1.0:
            # The density is defined on the open interval; the endpoints
            # have density 0 (alpha, beta > 1) or are improper.
            if value in (0.0, 1.0):
                return -math.inf
            return -math.inf
        log_norm = (
            math.lgamma(self.alpha + self.beta)
            - math.lgamma(self.alpha)
            - math.lgamma(self.beta)
        )
        return (
            log_norm
            + (self.alpha - 1.0) * math.log(value)
            + (self.beta - 1.0) * math.log1p(-value)
        )

    def mean(self) -> float:
        return self.alpha / (self.alpha + self.beta)

    def variance(self) -> float:
        total = self.alpha + self.beta
        return self.alpha * self.beta / (total * total * (total + 1.0))

    def with_counts(self, successes: int, failures: int) -> "Beta":
        """Posterior after observing Bernoulli/Binomial counts."""
        return Beta(self.alpha + successes, self.beta + failures)

    def __repr__(self) -> str:
        return f"Beta(alpha={self.alpha:.6g}, beta={self.beta:.6g})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Beta)
            and self.alpha == other.alpha
            and self.beta == other.beta
        )

    def __hash__(self) -> int:
        return hash(("Beta", self.alpha, self.beta))
