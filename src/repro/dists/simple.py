"""Uniform, Delta, Gamma, Poisson, and Exponential distributions.

Delta is the lift of a concrete value into distribution space (the paper's
``distribution`` function lifts concrete values to Dirac distributions);
the others round out the conjugate families supported by delayed sampling.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dists.base import Distribution, ScalarDistribution, require_positive
from repro.errors import DistributionError

__all__ = ["Uniform", "Delta", "Gamma", "Poisson", "Exponential"]


class Uniform(ScalarDistribution):
    """Continuous uniform distribution on ``[lo, hi]``."""

    __slots__ = ("lo", "hi")

    def __init__(self, lo: float, hi: float):
        self.lo = float(lo)
        self.hi = float(hi)
        if not self.hi > self.lo:
            raise DistributionError(f"need lo < hi, got [{lo!r}, {hi!r}]")

    def sample(self, rng: np.random.Generator) -> float:
        return rng.uniform(self.lo, self.hi)

    def log_pdf(self, value: float) -> float:
        if self.lo <= float(value) <= self.hi:
            return -math.log(self.hi - self.lo)
        return -math.inf

    def mean(self) -> float:
        return 0.5 * (self.lo + self.hi)

    def variance(self) -> float:
        width = self.hi - self.lo
        return width * width / 12.0

    def __repr__(self) -> str:
        return f"Uniform(lo={self.lo:.6g}, hi={self.hi:.6g})"


class Delta(Distribution):
    """Dirac delta: all mass on one value.

    Scoring uses an indicator convention: ``log_pdf(v)`` is 0 if ``v``
    equals the point (up to float equality / array equality) and ``-inf``
    otherwise.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def sample(self, rng: np.random.Generator) -> Any:
        return self.value

    def log_pdf(self, value: Any) -> float:
        if isinstance(self.value, np.ndarray) or isinstance(value, np.ndarray):
            equal = np.array_equal(np.asarray(self.value), np.asarray(value))
        else:
            equal = value == self.value
        return 0.0 if equal else -math.inf

    def mean(self) -> Any:
        return self.value

    def variance(self) -> Any:
        if isinstance(self.value, np.ndarray):
            return np.zeros((self.value.size, self.value.size))
        return 0.0

    def memory_words(self) -> int:
        return 2

    def __repr__(self) -> str:
        return f"Delta({self.value!r})"


class Gamma(ScalarDistribution):
    """Gamma distribution with ``shape`` and ``rate`` (not scale)."""

    __slots__ = ("shape", "rate")

    def __init__(self, shape: float, rate: float):
        self.shape = require_positive("shape", shape)
        self.rate = require_positive("rate", rate)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.gamma(self.shape, 1.0 / self.rate)

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if value <= 0.0:
            return -math.inf
        return (
            self.shape * math.log(self.rate)
            - math.lgamma(self.shape)
            + (self.shape - 1.0) * math.log(value)
            - self.rate * value
        )

    def mean(self) -> float:
        return self.shape / self.rate

    def variance(self) -> float:
        return self.shape / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Gamma(shape={self.shape:.6g}, rate={self.rate:.6g})"


class Poisson(Distribution):
    """Poisson distribution with rate ``lam``."""

    __slots__ = ("lam",)

    def __init__(self, lam: float):
        self.lam = require_positive("lam", lam)

    def sample(self, rng: np.random.Generator) -> int:
        return int(rng.poisson(self.lam))

    def log_pdf(self, value) -> float:
        k = int(value)
        if k < 0:
            return -math.inf
        return k * math.log(self.lam) - self.lam - math.lgamma(k + 1)

    def mean(self) -> float:
        return self.lam

    def variance(self) -> float:
        return self.lam

    def __repr__(self) -> str:
        return f"Poisson(lam={self.lam:.6g})"


class Exponential(ScalarDistribution):
    """Exponential distribution with rate ``rate``."""

    __slots__ = ("rate",)

    def __init__(self, rate: float):
        self.rate = require_positive("rate", rate)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.exponential(1.0 / self.rate)

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if value < 0.0:
            return -math.inf
        return math.log(self.rate) - self.rate * value

    def mean(self) -> float:
        return 1.0 / self.rate

    def variance(self) -> float:
        return 1.0 / (self.rate * self.rate)

    def __repr__(self) -> str:
        return f"Exponential(rate={self.rate:.6g})"
