"""Mixture and tuple distributions.

SDS/DS report a *mixture* of per-particle symbolic marginals at every step
(Section 5.3: "Results are then aggregated in a mixture distribution
w.r.t. their weights"). :class:`Mixture` implements that aggregation.

:class:`TupleDist` is the componentwise product used when a model's output
is a tuple of values; components are treated as independent, which is the
correct marginal view for reporting per-component posteriors.
"""

from __future__ import annotations

import math
import warnings
from typing import Any, Sequence, Tuple

import numpy as np

from repro.dists.base import Distribution
from repro.errors import DistributionError
from repro.obs.registry import count_event

__all__ = ["Mixture", "TupleDist", "zero_nan_weights"]


def zero_nan_weights(weights: np.ndarray, stacklevel: int = 3) -> np.ndarray:
    """Replace NaN mixture weights with zero, loudly.

    ``np.any(weights < 0)`` is silently False for NaN, so without this
    check the mixture constructors accepted NaN weights and poisoned
    every downstream moment. The policy matches the per-particle NaN
    handling of :func:`repro.inference.resampling.normalize_log_weights`:
    zero weight for that component alone, with a :class:`RuntimeWarning`
    so the broken kernel stays visible.
    """
    nan_mask = np.isnan(weights)
    if nan_mask.any():
        count_event(
            "repro_nan_mixture_weights_total", amount=int(nan_mask.sum())
        )
        warnings.warn(
            f"{int(nan_mask.sum())} NaN mixture weight(s) treated as zero; "
            "check the kernel that produced them",
            RuntimeWarning,
            stacklevel=stacklevel,
        )
        weights = np.where(nan_mask, 0.0, weights)
    return weights


def _logsumexp(values) -> float:
    values = np.asarray(values, dtype=float)
    top = values.max()
    if math.isinf(top) and top < 0:
        return -math.inf
    return float(top + np.log(np.sum(np.exp(values - top))))


class Mixture(Distribution):
    """Weighted mixture of component distributions."""

    __slots__ = ("components", "weights")

    def __init__(self, components: Sequence[Distribution], weights: Sequence[float] = None):
        components = list(components)
        if not components:
            raise DistributionError("mixture needs at least one component")
        if weights is None:
            weights = np.full(len(components), 1.0 / len(components))
        else:
            weights = np.asarray(weights, dtype=float)
            if weights.size != len(components):
                raise DistributionError("components/weights length mismatch")
            weights = zero_nan_weights(weights, stacklevel=3)
            if np.any(weights < 0):
                raise DistributionError("weights must be non-negative")
            total = weights.sum()
            if not total > 0:
                raise DistributionError("weights must not all be zero")
            weights = weights / total
        self.components = components
        self.weights = weights
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> Any:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return self.components[idx].sample(rng)

    def log_pdf(self, value: Any) -> float:
        terms = []
        for comp, w in zip(self.components, self.weights):
            if w <= 0:
                continue
            terms.append(math.log(w) + comp.log_pdf(value))
        if not terms:
            return -math.inf
        return _logsumexp(terms)

    def mean(self) -> Any:
        acc = None
        for comp, w in zip(self.components, self.weights):
            term = np.asarray(comp.mean(), dtype=float) * w
            acc = term if acc is None else acc + term
        if acc is not None and acc.ndim == 0:
            return float(acc)
        return acc

    def variance(self) -> Any:
        # Law of total variance: E[Var] + Var[E] (componentwise).
        mean = np.asarray(self.mean(), dtype=float)
        acc = None
        for comp, w in zip(self.components, self.weights):
            comp_mean = np.asarray(comp.mean(), dtype=float)
            comp_var = np.asarray(comp.variance(), dtype=float)
            if comp_var.ndim == 2:
                # Covariance matrix: keep the diagonal contribution only
                # when mixing with scalar components is impossible anyway.
                spread = np.outer(comp_mean - mean, comp_mean - mean)
            else:
                diff = comp_mean - mean
                spread = diff * diff
            term = w * (comp_var + spread)
            acc = term if acc is None else acc + term
        if acc is not None and acc.ndim == 0:
            return float(acc)
        return acc

    def memory_words(self) -> int:
        return 2 + sum(c.memory_words() for c in self.components) + len(self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __repr__(self) -> str:
        return f"Mixture(n={len(self.components)})"


class TupleDist(Distribution):
    """Product of independent component distributions over tuple values."""

    __slots__ = ("components",)

    def __init__(self, components: Sequence[Distribution]):
        self.components = tuple(components)
        if not self.components:
            raise DistributionError("tuple distribution needs at least one component")

    def sample(self, rng: np.random.Generator) -> Tuple[Any, ...]:
        return tuple(c.sample(rng) for c in self.components)

    def log_pdf(self, value) -> float:
        if not isinstance(value, (tuple, list)) or len(value) != len(self.components):
            raise DistributionError("value arity does not match tuple distribution")
        return sum(c.log_pdf(v) for c, v in zip(self.components, value))

    def mean(self) -> Tuple[Any, ...]:
        return tuple(c.mean() for c in self.components)

    def variance(self) -> Tuple[Any, ...]:
        return tuple(c.variance() for c in self.components)

    def memory_words(self) -> int:
        return 1 + sum(c.memory_words() for c in self.components)

    def __len__(self) -> int:
        return len(self.components)

    def __repr__(self) -> str:
        return f"TupleDist(arity={len(self.components)})"
