"""Univariate Gaussian distribution.

The workhorse of the paper's benchmarks: the Kalman and Outlier models are
chains of Gaussians, and the linear-Gaussian conjugacy used by delayed
sampling (``repro.delayed.conjugacy``) manipulates these objects
symbolically.
"""

from __future__ import annotations

import math

import numpy as np

from repro.dists.base import ScalarDistribution, require_positive

__all__ = ["Gaussian"]

_LOG_2PI = math.log(2.0 * math.pi)


class Gaussian(ScalarDistribution):
    """Normal distribution ``N(mu, var)`` parameterized by mean and variance.

    The paper writes ``gaussian(mu, sigma2)`` with a variance second
    argument (e.g. ``N(0, 100)`` for the Kalman prior); we follow that
    convention.
    """

    __slots__ = ("mu", "var")

    def __init__(self, mu: float, var: float):
        self.mu = float(mu)
        self.var = require_positive("var", var)

    def sample(self, rng: np.random.Generator) -> float:
        return rng.normal(self.mu, math.sqrt(self.var))

    def log_pdf(self, value: float) -> float:
        diff = float(value) - self.mu
        return -0.5 * (_LOG_2PI + math.log(self.var) + diff * diff / self.var)

    def mean(self) -> float:
        return self.mu

    def variance(self) -> float:
        return self.var

    def affine(self, a: float, b: float) -> "Gaussian":
        """Distribution of ``a*X + b`` for ``X ~ self`` (``a`` nonzero)."""
        return Gaussian(a * self.mu + b, a * a * self.var)

    def posterior_given_obs(self, obs: float, obs_var: float) -> "Gaussian":
        """Posterior of ``X`` after observing ``Y = obs`` with ``Y|X ~ N(X, obs_var)``.

        The scalar Kalman measurement update; used directly by tests as a
        ground-truth oracle and indirectly by the conjugacy machinery.
        """
        precision = 1.0 / self.var + 1.0 / obs_var
        post_var = 1.0 / precision
        post_mu = post_var * (self.mu / self.var + float(obs) / obs_var)
        return Gaussian(post_mu, post_var)

    def __repr__(self) -> str:
        return f"Gaussian(mu={self.mu:.6g}, var={self.var:.6g})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Gaussian)
            and self.mu == other.mu
            and self.var == other.var
        )

    def __hash__(self) -> int:
        return hash(("Gaussian", self.mu, self.var))
