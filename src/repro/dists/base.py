"""Base classes for probability distributions.

All distributions in this package share a small, explicit interface:

* :meth:`Distribution.sample` draws a value using a caller-supplied
  :class:`numpy.random.Generator` (no hidden global state — inference
  engines own their generators so runs are reproducible),
* :meth:`Distribution.log_pdf` scores a value (density or mass in log
  space, the form used by ``observe``/``factor``),
* :meth:`Distribution.mean` and :meth:`Distribution.variance` expose the
  first two moments where they exist, used by the benchmark error metrics.

Distributions are immutable value objects: conditioning in the delayed
sampling graph always produces a *new* distribution.
"""

from __future__ import annotations

import abc
import math
from typing import Any

import numpy as np

from repro.errors import DistributionError

__all__ = ["Distribution", "ScalarDistribution", "require_positive", "require_prob"]


def require_positive(name: str, value: float) -> float:
    """Validate that a scalar parameter is strictly positive."""
    value = float(value)
    if not value > 0.0 or math.isnan(value):
        raise DistributionError(f"{name} must be > 0, got {value!r}")
    return value


def require_prob(name: str, value: float) -> float:
    """Validate that a scalar parameter lies in the closed interval [0, 1]."""
    value = float(value)
    if math.isnan(value) or not 0.0 <= value <= 1.0:
        raise DistributionError(f"{name} must be in [0, 1], got {value!r}")
    return value


class Distribution(abc.ABC):
    """A probability distribution over values of some type.

    Subclasses must be immutable; all parameters are fixed at
    construction time and validated there.

    The empty ``__slots__`` here matters: distributions are the hottest
    allocation in the scalar delayed samplers (every conjugate update
    builds a new object), and a slotted subclass only sheds its
    per-instance ``__dict__`` if *every* base declares slots too.
    """

    __slots__ = ()

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator) -> Any:
        """Draw one value from the distribution."""

    @abc.abstractmethod
    def log_pdf(self, value: Any) -> float:
        """Log density (or log mass) of ``value``.

        Returns ``-inf`` for values outside the support.
        """

    @abc.abstractmethod
    def mean(self) -> Any:
        """Expected value. Raises :class:`DistributionError` if undefined."""

    @abc.abstractmethod
    def variance(self) -> Any:
        """Variance. Raises :class:`DistributionError` if undefined."""

    def pdf(self, value: Any) -> float:
        """Density (or mass) of ``value``; convenience over :meth:`log_pdf`."""
        return math.exp(self.log_pdf(value))

    # The number of abstract memory "words" this object occupies, used by
    # the ideal-memory instrumentation (Section 6.3 of the paper). A plain
    # scalar-parameter distribution is a small constant.
    def memory_words(self) -> int:
        """Approximate size in abstract heap words (for memory profiling)."""
        return 4


class ScalarDistribution(Distribution):
    """A distribution over real scalars (or scalar-like values)."""

    __slots__ = ()

    def sample(self, rng: np.random.Generator) -> float:
        raise NotImplementedError

    def stddev(self) -> float:
        """Standard deviation, derived from :meth:`variance`."""
        return math.sqrt(self.variance())
