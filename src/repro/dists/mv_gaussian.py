"""Multivariate Gaussian distribution.

Used by the robot tracking example (Fig. 5 of the paper): the position /
velocity state of the robot is a small Gaussian vector, and the
GPS/accelerometer updates are matrix Kalman updates expressed through the
multivariate linear-Gaussian conjugacy.
"""

from __future__ import annotations

import numpy as np

from repro.dists.base import Distribution
from repro.errors import DistributionError

__all__ = [
    "MvGaussian",
    "batched_matvec",
    "batched_rowdot",
    "batched_mv_log_pdf",
]


def batched_matvec(a, x: np.ndarray) -> np.ndarray:
    """``A @ x_i`` for every particle row of ``x`` — ``(n, d_in) -> (n, d_out)``.

    Expanded into per-column elementwise products summed left to right,
    so each output row is computed independently of every other row:
    slicing the particle axis (sharded execution) cannot change a single
    bit of the result, which BLAS-backed ``matmul`` does not guarantee.
    State dimensions are tiny (the robot's is 3), so the Python loop is
    over matrix entries, not particles.
    """
    a = np.asarray(a, dtype=float)
    x = np.asarray(x, dtype=float)
    cols = []
    for i in range(a.shape[0]):
        acc = a[i, 0] * x[:, 0]
        for j in range(1, a.shape[1]):
            acc = acc + a[i, j] * x[:, j]
        cols.append(acc)
    return np.stack(cols, axis=1)


def batched_rowdot(row, x: np.ndarray) -> np.ndarray:
    """``row . x_i`` for every particle row of ``x`` — ``(n, d) -> (n,)``.

    The projection kernel (``x[i]`` observations, GPS fixes); same
    fixed-order summation guarantee as :func:`batched_matvec`.
    """
    row = np.asarray(row, dtype=float)
    x = np.asarray(x, dtype=float)
    acc = row[0] * x[:, 0]
    for j in range(1, row.size):
        acc = acc + row[j] * x[:, j]
    return acc


def batched_mv_log_pdf(value, means: np.ndarray, cov: np.ndarray) -> np.ndarray:
    """``log N(value; mean_i, cov)`` for per-particle means, shared cov.

    The batched counterpart of :meth:`MvGaussian.log_pdf` under the
    Gaussian-chain invariant that covariances are particle-independent
    (covariance arithmetic never touches realized values). Uses the same
    pseudo-inverse / pseudo-determinant treatment of degenerate
    covariances as the scalar method.
    """
    means = np.asarray(means, dtype=float)
    cov = np.asarray(cov, dtype=float)
    d = cov.shape[0]
    diff = np.asarray(value, dtype=float).reshape(1, -1) - means
    sign, logdet = np.linalg.slogdet(cov)
    if sign <= 0:
        eigvals = np.linalg.eigvalsh(cov)
        pos = eigvals[eigvals > 1e-12]
        logdet = float(np.sum(np.log(pos)))
    pinv = np.linalg.pinv(cov)
    maha = batched_rowdot(np.ones(d), diff * batched_matvec(pinv, diff))
    return -0.5 * (d * np.log(2.0 * np.pi) + logdet + maha)


class MvGaussian(Distribution):
    """Multivariate normal ``N(mu, cov)`` over ``R^d``.

    ``mu`` is a length-``d`` vector, ``cov`` a ``d x d`` symmetric positive
    semi-definite matrix. Arrays are copied and frozen at construction.
    """

    __slots__ = ("mu", "cov", "_dim")

    def __init__(self, mu, cov):
        mu = np.asarray(mu, dtype=float).reshape(-1)
        cov = np.asarray(cov, dtype=float)
        if cov.shape != (mu.size, mu.size):
            raise DistributionError(
                f"cov shape {cov.shape} does not match mean of dim {mu.size}"
            )
        if not np.allclose(cov, cov.T, atol=1e-8):
            raise DistributionError("cov must be symmetric")
        self.mu = mu
        self.cov = cov
        self._dim = mu.size
        self.mu.setflags(write=False)
        self.cov.setflags(write=False)

    @property
    def dim(self) -> int:
        """Dimension of the support."""
        return self._dim

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        return rng.multivariate_normal(self.mu, self.cov, method="svd")

    def log_pdf(self, value) -> float:
        value = np.asarray(value, dtype=float).reshape(-1)
        if value.size != self._dim:
            raise DistributionError(
                f"value of dim {value.size} scored against MvGaussian of dim {self._dim}"
            )
        diff = value - self.mu
        # Pseudo-inverse / pseudo-determinant handle the degenerate
        # (rank-deficient) covariances that arise from deterministic
        # components of the state.
        sign, logdet = np.linalg.slogdet(self.cov)
        if sign <= 0:
            eigvals = np.linalg.eigvalsh(self.cov)
            pos = eigvals[eigvals > 1e-12]
            logdet = float(np.sum(np.log(pos)))
        maha = float(diff @ np.linalg.pinv(self.cov) @ diff)
        return -0.5 * (self._dim * np.log(2.0 * np.pi) + logdet + maha)

    def mean(self) -> np.ndarray:
        return self.mu

    def variance(self) -> np.ndarray:
        return self.cov

    def affine(self, a, b) -> "MvGaussian":
        """Distribution of ``A @ X + b`` for ``X ~ self``."""
        a = np.asarray(a, dtype=float)
        b = np.asarray(b, dtype=float).reshape(-1)
        return MvGaussian(a @ self.mu + b, a @ self.cov @ a.T)

    def memory_words(self) -> int:
        return 2 + self._dim + self._dim * self._dim

    def __repr__(self) -> str:
        return f"MvGaussian(mu={np.array2string(self.mu, precision=4)}, dim={self._dim})"
