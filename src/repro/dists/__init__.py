"""Probability distributions used throughout the reproduction.

This package is the numerical substrate of ProbZelus' ``sample`` /
``observe`` operators and of the delayed-sampling conjugacy machinery.
"""

from repro.dists.base import Distribution, ScalarDistribution
from repro.dists.bernoulli import Bernoulli, Binomial
from repro.dists.beta import Beta
from repro.dists.categorical import Categorical, Dirichlet, Empirical
from repro.dists.gaussian import Gaussian
from repro.dists.mixture import Mixture, TupleDist
from repro.dists.mv_gaussian import MvGaussian
from repro.dists.simple import Delta, Exponential, Gamma, Poisson, Uniform
from repro.dists.student import InverseGamma, StudentT

__all__ = [
    "Distribution",
    "ScalarDistribution",
    "Gaussian",
    "MvGaussian",
    "Beta",
    "Bernoulli",
    "Binomial",
    "Uniform",
    "Delta",
    "Gamma",
    "Poisson",
    "InverseGamma",
    "StudentT",
    "Exponential",
    "Categorical",
    "Dirichlet",
    "Empirical",
    "Mixture",
    "TupleDist",
]
