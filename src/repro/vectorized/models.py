"""Vectorized counterparts of the benchmark models.

A :class:`VectorizedModel` is the structure-of-arrays analogue of
:class:`~repro.runtime.node.ProbNode`: ``step_batch`` advances *all*
particles one synchronous instant with array kernels and returns the
stacked outputs, the next batch state, and the per-particle step
log-weights — the information the scalar engines collect one particle
at a time through :class:`~repro.inference.contexts.SamplingCtx`.

The classes here mirror ``repro.bench.models`` exactly (same
parameters, same sampling semantics, so the same posterior laws); the
:func:`vectorize_model` registry maps a scalar model instance to its
batched equivalent, which is how ``infer(..., backend="vectorized")``
decides whether a model is vectorizable. The registry starts empty and
is populated by the layers that own the scalar models (the benchmark
package registers its four models when imported), so this core package
never depends on them.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, Dict, Optional, Set, Tuple, Type

import numpy as np

from repro.runtime.node import ProbNode
from repro.vectorized.kernels import (
    bernoulli_log_prob,
    bernoulli_sample,
    gaussian_log_prob,
    gaussian_sample,
)

__all__ = [
    "VectorizedModel",
    "VectorizedKalman",
    "VectorizedCoin",
    "VectorizedOutlier",
    "GraphOutlierModel",
    "VECTORIZED_MODELS",
    "CONJUGATE_GAUSSIAN_CHAINS",
    "SDS_ENGINES",
    "BDS_ENGINES",
    "DS_GRAPH_ADAPTERS",
    "register_vectorizer",
    "register_conjugate_gaussian_chain",
    "register_sds_engine",
    "register_bds_engine",
    "register_ds_graph_model",
    "register_gaussian_chain_model",
    "vectorize_model",
    "kalman_vectorizer",
    "coin_vectorizer",
    "outlier_vectorizer",
]


class VectorizedModel(abc.ABC):
    """A probabilistic stream model advancing all particles at once."""

    @abc.abstractmethod
    def init_batch(self, n: int, rng: np.random.Generator) -> Any:
        """Initial batch state for ``n`` particles (a pytree of arrays)."""

    @abc.abstractmethod
    def step_batch(
        self, state: Any, inp: Any, n: int, rng: np.random.Generator
    ) -> Tuple[np.ndarray, Any, np.ndarray]:
        """One synchronous step for the whole batch.

        Returns ``(outputs, next_state, step_log_weights)`` where
        ``outputs`` stacks the per-particle outputs and
        ``step_log_weights`` is the length-``n`` vector of this step's
        ``observe``/``factor`` contributions.
        """


class VectorizedKalman(VectorizedModel):
    """Batched 1-D Gaussian state-space model (Appendix B.1 / Fig. 2 HMM).

    State is the stacked position vector; a step draws all motion
    samples with one Gaussian kernel call and scores all observations
    with one log-density call.
    """

    def __init__(
        self,
        prior_mean: float = 0.0,
        prior_var: float = 100.0,
        motion_var: float = 1.0,
        obs_var: float = 1.0,
    ):
        self.prior_mean = prior_mean
        self.prior_var = prior_var
        self.motion_var = motion_var
        self.obs_var = obs_var

    def init_batch(self, n: int, rng: np.random.Generator) -> Any:
        return None

    def step_batch(self, state, yobs, n, rng):
        if state is None:
            xt = gaussian_sample(np.full(n, self.prior_mean), self.prior_var, rng)
        else:
            xt = gaussian_sample(state, self.motion_var, rng)
        logw = gaussian_log_prob(float(yobs), xt, self.obs_var)
        return xt, xt, logw


class VectorizedCoin(VectorizedModel):
    """Batched Beta-Bernoulli bias estimation (Appendix B.2)."""

    def __init__(self, alpha: float = 1.0, beta_param: float = 1.0):
        self.alpha = alpha
        self.beta_param = beta_param

    def init_batch(self, n: int, rng: np.random.Generator) -> Any:
        return None

    def step_batch(self, state, yobs, n, rng):
        if state is None:
            xt = rng.beta(self.alpha, self.beta_param, size=n)
        else:
            xt = state
        logw = bernoulli_log_prob(bool(yobs), xt)
        return xt, xt, logw


class VectorizedOutlier(VectorizedModel):
    """Batched position tracking with a faulty sensor (Appendix B.3).

    The per-particle branch on the outlier indicator becomes a masked
    blend of the two observation log-densities.
    """

    def __init__(
        self,
        prior_mean: float = 0.0,
        prior_var: float = 100.0,
        motion_var: float = 1.0,
        obs_var: float = 1.0,
        outlier_alpha: float = 100.0,
        outlier_beta: float = 1000.0,
        outlier_mean: float = 0.0,
        outlier_var: float = 100.0,
    ):
        self.prior_mean = prior_mean
        self.prior_var = prior_var
        self.motion_var = motion_var
        self.obs_var = obs_var
        self.outlier_alpha = outlier_alpha
        self.outlier_beta = outlier_beta
        self.outlier_mean = outlier_mean
        self.outlier_var = outlier_var

    def init_batch(self, n: int, rng: np.random.Generator) -> Any:
        return None

    def step_batch(self, state, yobs, n, rng):
        if state is None:
            xt = gaussian_sample(np.full(n, self.prior_mean), self.prior_var, rng)
            outlier_prob = rng.beta(self.outlier_alpha, self.outlier_beta, size=n)
        else:
            prev_x, outlier_prob = state
            xt = gaussian_sample(prev_x, self.motion_var, rng)
        is_outlier = bernoulli_sample(outlier_prob, rng)
        yobs = float(yobs)
        logw = np.where(
            is_outlier,
            gaussian_log_prob(yobs, self.outlier_mean, self.outlier_var),
            gaussian_log_prob(yobs, xt, self.obs_var),
        )
        return xt, (xt, outlier_prob), logw


class GraphOutlierModel(ProbNode):
    """Lockstep-friendly Outlier model for the generic batched DS graph.

    Same laws and parameters as the benchmark ``OutlierModel``; the one
    rewrite is the observation. The original branches Python control
    flow on the realized outlier indicator (``if is_outlier: observe(...)
    else: observe(...)``), which cannot run once for a whole population
    — the indicator is a per-particle array. Here the branch is the
    equivalent *masked affine observation*

    ``y ~ N(x * (1 - m) + m * outlier_mean,  where(m, outlier_var, obs_var))``

    which performs exactly the conjugate arithmetic of the branch
    (``m_i = 1``: the chain is ignored and the outlier density scores;
    ``m_i = 0``: the ordinary Kalman update) but as one whole-population
    edge with per-particle coefficient and variance. Under a scalar
    context the mask is a plain 0/1 float, so this model also runs —
    with identical laws — on every scalar engine, which is what the
    mid-stream fallback relies on.
    """

    _PARAMS = (
        "prior_mean",
        "prior_var",
        "motion_var",
        "obs_var",
        "outlier_alpha",
        "outlier_beta",
        "outlier_mean",
        "outlier_var",
    )

    def __init__(self, model: Any):
        for param in self._PARAMS:
            setattr(self, param, float(getattr(model, param)))

    def init(self) -> Any:
        return None  # (previous position, outlier_prob) after the first step

    def step(self, state: Any, yobs: float, ctx) -> Any:
        # Imported lazily: repro.lang pulls in the symbolic layer, which
        # this registry module otherwise never needs.
        from repro.lang import bernoulli, beta, gaussian

        if state is None:
            xt = ctx.sample(gaussian(self.prior_mean, self.prior_var))
            outlier_prob = ctx.sample(beta(self.outlier_alpha, self.outlier_beta))
        else:
            prev_x, outlier_prob = state
            xt = ctx.sample(gaussian(prev_x, self.motion_var))
        is_outlier = ctx.value(ctx.sample(bernoulli(outlier_prob)))
        mask = np.asarray(is_outlier, dtype=float)
        obs_var = np.where(
            np.asarray(is_outlier, dtype=bool), self.outlier_var, self.obs_var
        )
        # Keep the symbolic term on the left so NumPy never broadcasts
        # an array over the expression node.
        obs_mean = xt * (1.0 - mask) + mask * self.outlier_mean
        ctx.observe(gaussian(obs_mean, obs_var), yobs)
        return xt, (xt, outlier_prob)


# ----------------------------------------------------------------------
# scalar model -> vectorized model registry
# ----------------------------------------------------------------------
def kalman_vectorizer(model: Any) -> VectorizedKalman:
    """Builder for any Kalman-shaped model (prior/motion/obs parameters)."""
    return VectorizedKalman(
        prior_mean=model.prior_mean,
        prior_var=model.prior_var,
        motion_var=model.motion_var,
        obs_var=model.obs_var,
    )


def coin_vectorizer(model: Any) -> VectorizedCoin:
    """Builder for any Beta-Bernoulli coin-shaped model."""
    return VectorizedCoin(alpha=model.alpha, beta_param=model.beta_param)


def outlier_vectorizer(model: Any) -> VectorizedOutlier:
    """Builder for any Outlier-shaped model."""
    return VectorizedOutlier(
        prior_mean=model.prior_mean,
        prior_var=model.prior_var,
        motion_var=model.motion_var,
        obs_var=model.obs_var,
        outlier_alpha=model.outlier_alpha,
        outlier_beta=model.outlier_beta,
        outlier_mean=model.outlier_mean,
        outlier_var=model.outlier_var,
    )


#: exact scalar model type -> builder of the equivalent VectorizedModel.
#: Populated by the packages that own the scalar models (repro.bench
#: registers KalmanModel/HmmModel/CoinModel/OutlierModel on import).
VECTORIZED_MODELS: Dict[Type[ProbNode], Callable[[ProbNode], VectorizedModel]] = {}

#: exact scalar model types whose SDS semantics is the closed-form
#: conjugate Gaussian chain of ``VectorizedKalmanSDS``.
CONJUGATE_GAUSSIAN_CHAINS: Set[Type[ProbNode]] = set()

#: exact scalar model type -> factory of the vectorized engine that
#: reproduces its streaming-delayed-sampling semantics in closed form
#: (``factory(model, **engine_kwargs)``). Populated by the packages that
#: own the scalar models, like ``VECTORIZED_MODELS``.
SDS_ENGINES: Dict[Type[ProbNode], Callable[..., Any]] = {}

#: exact scalar model type -> factory of the vectorized engine that
#: reproduces its *bounded* delayed-sampling semantics (fresh graph per
#: step, forced realization at the end of each instant). Populated like
#: ``SDS_ENGINES``; ``register_gaussian_chain_model`` fills both from
#: one call for models inside the linear-Gaussian chain fragment.
BDS_ENGINES: Dict[Type[ProbNode], Callable[..., Any]] = {}

#: exact scalar model type -> the lockstep adapter its DS-graph
#: registration carries (``register_ds_graph_model(..., adapter=...)``).
#: The static analysis consults this so routing verdicts are computed on
#: the model the batched engine actually runs (e.g. the Outlier model's
#: per-particle branch is judged through :class:`GraphOutlierModel`'s
#: masked-affine rewrite, not the raw scalar code).
DS_GRAPH_ADAPTERS: Dict[Type[ProbNode], Callable[[ProbNode], ProbNode]] = {}


def register_vectorizer(
    model_cls: Type[ProbNode],
    builder: Callable[[ProbNode], VectorizedModel],
) -> None:
    """Register a vectorized equivalent for a scalar model class."""
    VECTORIZED_MODELS[model_cls] = builder


def register_conjugate_gaussian_chain(model_cls: Type[ProbNode]) -> None:
    """Mark a scalar model class as an exact conjugate Gaussian chain."""
    CONJUGATE_GAUSSIAN_CHAINS.add(model_cls)


def register_sds_engine(
    model_cls: Type[ProbNode], factory: Callable[..., Any]
) -> None:
    """Register a closed-form vectorized SDS engine for a model class.

    ``factory(model, **engine_kwargs)`` must build a
    :class:`~repro.vectorized.engine.VectorizedEngine` reproducing the
    model's delayed-sampling semantics. Exact classes only — subclasses
    may override ``step`` with structure the closed form would miss.
    """
    SDS_ENGINES[model_cls] = factory


def register_bds_engine(
    model_cls: Type[ProbNode], factory: Callable[..., Any]
) -> None:
    """Register a vectorized BDS engine for a model class (exact classes)."""
    BDS_ENGINES[model_cls] = factory


def register_ds_graph_model(
    model_cls: Type[ProbNode],
    adapter: Optional[Callable[[ProbNode], ProbNode]] = None,
    verify: bool = True,
) -> None:
    """Route a model to the generic array-native DS graph engine.

    Registers :class:`~repro.vectorized.engine.VectorizedGaussianChainSDS`
    factories for the model class: always for ``bds`` (the graph engine
    is the only batched BDS), and for ``sds`` only when no closed-form
    engine already claims the class (``SDS_ENGINES`` /
    ``CONJUGATE_GAUSSIAN_CHAINS`` win — e.g. the Kalman/HMM chains keep
    their dedicated mean/variance recursions). ``adapter``, when given,
    wraps the scalar model in a lockstep-friendly equivalent before the
    engine runs it (e.g. :class:`GraphOutlierModel`, which rewrites the
    Outlier model's per-particle branch as a masked affine observation).

    With ``verify=True`` (the default) the static analysis
    (:func:`repro.analysis.analysis_for`) is consulted on a
    default-constructed, adapted instance; a *conclusively unbatchable*
    verdict raises a :class:`RuntimeWarning` — the registration still
    happens (the runtime's mid-stream scalar fallback keeps a
    mis-registered model correct, and tests register such models on
    purpose), but the warning points at the exact lockstep/family
    violation the batched engine will trip over. Registration is
    atomic: either every registry entry lands or none does.
    """
    # Imported lazily: the engine module imports this registry module.
    from repro.vectorized.engine import VectorizedGaussianChainSDS

    def wrap(model: ProbNode) -> ProbNode:
        return model if adapter is None else adapter(model)

    def bds_factory(model: ProbNode, **kwargs: Any) -> Any:
        return VectorizedGaussianChainSDS(wrap(model), mode="bds", **kwargs)

    def sds_factory(model: ProbNode, **kwargs: Any) -> Any:
        return VectorizedGaussianChainSDS(wrap(model), mode="sds", **kwargs)

    if verify:
        _warn_if_unbatchable(model_cls, wrap)

    # Atomic: snapshot the registries this function touches, roll back
    # on any failure so a half-registered model never escapes.
    saved = [
        (reg, model_cls in reg, reg.get(model_cls))
        for reg in (BDS_ENGINES, SDS_ENGINES, DS_GRAPH_ADAPTERS)
    ]
    try:
        register_bds_engine(model_cls, bds_factory)
        if model_cls not in SDS_ENGINES and model_cls not in CONJUGATE_GAUSSIAN_CHAINS:
            register_sds_engine(model_cls, sds_factory)
        if adapter is not None:
            DS_GRAPH_ADAPTERS[model_cls] = adapter
        else:
            DS_GRAPH_ADAPTERS.pop(model_cls, None)
    except Exception:
        for reg, had, old in saved:
            if had:
                reg[model_cls] = old
            else:
                reg.pop(model_cls, None)
        raise


def _warn_if_unbatchable(
    model_cls: Type[ProbNode], wrap: Callable[[ProbNode], ProbNode]
) -> None:
    """Warn when the static analysis conclusively rejects the model.

    Best-effort: a model class whose constructor needs arguments, or
    one the analysis cannot see through, is registered silently — the
    empirical probe and the runtime fallback still cover it.
    """
    import warnings

    try:
        instance = wrap(model_cls())
    except Exception:
        return
    try:
        # Imported lazily: repro.analysis imports the vectorized layer.
        from repro.analysis.routing import analysis_for

        analysis = analysis_for(instance)
    except Exception:
        return
    if analysis.conclusive and not analysis.batchable:
        details = "; ".join(d.format() for d in analysis.diagnostics) or analysis.reason
        warnings.warn(
            f"register_ds_graph_model({model_cls.__name__}): the static "
            f"analysis finds the model conclusively unbatchable — the "
            f"batched engine will fall back to scalar execution at "
            f"runtime ({details})",
            RuntimeWarning,
            stacklevel=3,
        )


#: back-compat alias: the PR-4 name of the registration hook, when the
#: graph engine only covered linear-Gaussian chains.
register_gaussian_chain_model = register_ds_graph_model


def vectorize_model(model: Any) -> Optional[VectorizedModel]:
    """The batched equivalent of ``model``, or None if not vectorizable.

    A model is vectorizable when it already *is* a
    :class:`VectorizedModel` or when its exact class is registered in
    ``VECTORIZED_MODELS`` (subclasses may override ``step`` arbitrarily,
    so they do not inherit their parent's vectorization).
    """
    if isinstance(model, VectorizedModel):
        return model
    builder = VECTORIZED_MODELS.get(type(model))
    if builder is None:
        return None
    return builder(model)
