"""Array-native delayed sampling: one batched graph for all particles.

The scalar delayed samplers (:mod:`repro.delayed`) run one pointer-based
graph *per particle*: every ``graft`` / ``marginalize`` / ``condition``
/ ``realize`` is a Python method call on a Python node object, so the
per-step cost of ``bds`` / ``sds`` is dominated by interpreter overhead
multiplied by the particle count — exactly the overhead the paper's
constant-latency claim is about. This module is the structure-of-arrays
counterpart of the paper's semi-symbolic runtime for the models whose
delayed-sampling execution is *lockstep-batchable*:

* :class:`BatchedDSGraph` holds the delayed-sampling state of **all N
  particles at once**. A graph *slot* is one random variable of the
  model; its lifecycle state lives in one ``int8`` entry of the
  slot-state array, its links in flat ``int32`` parent / marginal-child
  arrays, and its marginal parameters in stacked per-particle arrays.
  Which arrays, and which conjugacy arithmetic, is decided by a
  **per-slot family tag** dispatching into the ``FAMILY_KERNELS``
  table — the pluggable SoA kernel set of each conjugacy family:

  - ``"gaussian"`` — per-particle mean rows, a variance that is shared
    (a float) on pure chains and widens to a per-particle array when a
    realized indicator masks the update (the Outlier observation);
  - ``"mv_gaussian"`` — ``(n, d)`` mean rows with a shared ``(d, d)``
    covariance (the Gaussian-chain invariant: the covariance recursion
    of a linear-Gaussian chain never touches realized values);
  - ``"beta"`` — per-particle ``(alpha, beta)`` parameter rows;
  - ``"bernoulli"`` — per-particle predictive-probability rows;
  - ``"gamma"`` — per-particle ``(shape, rate)`` parameter rows;
  - ``"poisson"`` — per-particle rate rows, widening to the
    negative-binomial ``(shape, rate)`` compound when the rate is a
    symbolic Gamma parent (the Gamma-Poisson marginal);
  - ``"dirichlet"`` — per-particle ``(n, k)`` concentration rows;
  - ``"categorical"`` — per-particle ``(n, k)`` probability rows with
    scalar integer draws.

  Edges are the batched conjugacy relationships
  (:class:`ScalarAffineEdge` — whose coefficient and variance may be
  per-particle arrays, the masked-update trick —
  :class:`ProjectionEdge`, :class:`MvAffineEdge`,
  :class:`BetaBernoulliEdge`), and graft / marginalize / condition /
  realize are whole-population kernels with the *pointer-minimal
  streaming discipline* of Section 5.3 (forward pointers on
  marginalization, deferred conditioning of parents on realized
  children) ported verbatim from
  :class:`~repro.delayed.streaming.StreamingGraph`. Tree-shaped models
  — several variables alive at once, e.g. the Outlier model's
  Beta→Bernoulli branch beside its Gaussian position chain — are a
  forest of such slots; grafting across a branch prunes sibling
  marginalized sub-paths with whole-population posterior draws, exactly
  as the scalar graph does one particle at a time.

* :class:`BatchedDelayedCtx` gives unmodified scalar model code
  (:class:`~repro.runtime.node.ProbNode` ``step`` functions) the batched
  semantics: ``sample`` returns a symbolic :class:`~repro.symbolic.RVar`
  over a batched slot, ``observe`` conditions all particles with one
  kernel and returns the per-particle log-weight vector, ``value``
  realizes by one batched posterior draw.

**Lockstep invariant.** The model's Python code runs *once* per step for
the whole population, so every particle performs the same graph
operations in the same order — slot lifecycles are shared, only the
per-particle parameter rows and realized values differ. Forced
realization (``ctx.value``) is allowed: it yields per-particle value
*arrays*, which may feed back into distribution parameters (per-particle
means, masked affine coefficients) but never into Python control flow.
The structure detector (:mod:`repro.delayed.detect`,
``probe_ds_structure``) admits exactly this class empirically.

**The degradation ladder.** A non-conjugate or non-affine dependency
(``x * x`` as a mean, a Gamma rate feeding a Gaussian location, a
symbolic variance) no longer leaves the graph: the dependency-breaking
rule realizes *only the slots the offending expression references* —
one batched posterior draw each, counted in
``repro_slot_realizations_total{family}`` — folds the values into the
parameters, and continues with every other slot symbolic. Only
structure the graph cannot express at all (a family without kernels —
Uniform, InverseGamma, … — a parameter of the wrong shape, branching
Python control flow on a per-particle value array) raises
:class:`ChainStructureError`. ``infer`` never routes such models here
when the detector / registries are used, and the graph engine
(:class:`~repro.vectorized.engine.VectorizedGaussianChainSDS`) catches
the error mid-stream as the last resort, migrates the population to
the scalar delayed samplers with a one-time :class:`RuntimeWarning`,
and finishes the stream there — degrading gracefully instead of
aborting inference.

Randomness is consumed in the same particle-major order as the scalar
engines (batched ``rng.normal`` / the replicated svd path of
:func:`~repro.vectorized.kernels.mv_gaussian_sample`), so a fixed-seed
run reproduces the scalar ``bds`` draws on pure chains, and all batched
kernels are row-stable (see
:func:`~repro.dists.mv_gaussian.batched_matvec`), so sharded execution
is bit-identical to serial for every executor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, List, Optional, Tuple

import numpy as np

from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Dirichlet,
    Distribution,
    Gamma,
    Gaussian,
    MvGaussian,
    Poisson,
)
from repro.dists.mv_gaussian import (
    batched_matvec,
    batched_mv_log_pdf,
    batched_rowdot,
)
from repro.errors import GraphError
from repro.lang.lifted import SymDist
from repro.obs.registry import count_event
from repro.runtime.node import ProbCtx
from repro.symbolic import (
    App,
    BatchConst,
    RVar,
    SymExpr,
    extract_affine,
    is_symbolic,
)
from repro.vectorized.kernels import (
    bernoulli_log_prob,
    bernoulli_sample,
    beta_bernoulli_predictive,
    beta_bernoulli_update,
    beta_log_prob,
    categorical_row_log_prob,
    categorical_sample,
    dirichlet_log_prob,
    dirichlet_sample,
    gamma_log_prob,
    gamma_sample,
    gaussian_log_prob,
    mv_gaussian_sample,
    neg_binomial_log_prob,
    poisson_log_prob,
)

__all__ = [
    "ChainStructureError",
    "SlotFamily",
    "FAMILY_KERNELS",
    "register_slot_family",
    "BatchedNode",
    "BatchedDSGraph",
    "BatchedGaussianChainGraph",
    "BatchedDelayedCtx",
    "ScalarAffineEdge",
    "ProjectionEdge",
    "MvAffineEdge",
    "BetaBernoulliEdge",
    "GammaPoissonEdge",
    "DirichletCategoricalEdge",
    "ChainOuts",
    "ChainState",
    "wrap_batch_state",
    "lift_output",
    "delta_rows",
    "FREE",
    "INITIALIZED",
    "MARGINALIZED",
    "REALIZED",
]

#: int8 slot-state codes of the node-state array.
FREE = np.int8(0)
INITIALIZED = np.int8(1)
MARGINALIZED = np.int8(2)
REALIZED = np.int8(3)


class ChainStructureError(GraphError):
    """The model stepped outside the batched delayed-sampling fragment.

    Since PR 8 this is the *last* rung of the degradation ladder:
    non-conjugate and non-affine dependencies are first handled in-graph
    by realizing only the offending slots (the dependency-breaking rule,
    see :meth:`BatchedDelayedCtx._realized_param`), so the error is
    raised only for structure the graph cannot express at all — a family
    without SoA kernels, a parameter of the wrong shape, an operator
    with no batched evaluation rule. ``infer`` never routes such models
    here when the structure detector / registries are used, and the
    graph engine falls back to the scalar delayed samplers mid-stream
    (state migrated, one-time ``RuntimeWarning``) when a model leaves
    the fragment after it started.

    ``reason`` is a bounded category tag — ``"unsupported-family"``,
    ``"shape"``, ``"unsupported-op"``, or ``"structure"`` — surfaced as
    the ``reason`` label of the ``repro_scalar_fallback_total`` counter.
    """

    def __init__(self, message: str, reason: str = "structure"):
        super().__init__(message)
        self.reason = reason


def __getattr__(name: str):
    if name == "ChainFragmentError":
        # The PR-4-era alias, kept importable one release as a shim.
        import warnings

        warnings.warn(
            "ChainFragmentError is deprecated; use ChainStructureError",
            DeprecationWarning,
            stacklevel=2,
        )
        return ChainStructureError
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# ----------------------------------------------------------------------
# per-family SoA kernels (the pluggable dispatch table)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SlotFamily:
    """SoA kernels and layout of one conjugacy family.

    A slot of this family stores two parameter entries, ``p0`` (the
    per-particle rows: Gaussian means, Beta alphas, Bernoulli
    probabilities) and ``p1`` (the scale: variance / covariance / Beta
    betas, or None for scale-free families). ``vector`` families stack
    rows as ``(n, d)``; scalar families as ``(n,)``.
    """

    name: str
    #: per-particle rows are (n, d) instead of (n,)
    vector: bool = False
    #: the family has a second (scale) parameter at all
    has_scale: bool = True
    #: the scale broadcasts to the particle axis (Beta betas); shared
    #: scales (Gaussian variances, covariances) stay scalar/(d, d)
    #: unless the model hands the graph a per-particle array.
    per_particle_scale: bool = False
    #: cast applied to shared realized values when broadcasting
    cast: Callable[[Any], Any] = float
    #: realized values stack as (n, d) rows; None inherits ``vector``.
    #: Categorical slots are the split case: (n, k) probability rows but
    #: scalar integer draws.
    value_vector: Optional[bool] = None
    #: (p0, p1, rng) -> per-particle draw rows
    sample: Optional[Callable] = None
    #: (p0, p1, value) -> per-particle log-densities
    log_pdf: Optional[Callable] = None

    @property
    def values_vector(self) -> bool:
        """Whether realized values of this family stack as (n, d) rows."""
        return self.vector if self.value_vector is None else self.value_vector


#: family tag -> SoA kernel set. Extend with :func:`register_slot_family`.
FAMILY_KERNELS = {}


def register_slot_family(family: SlotFamily) -> None:
    """Register (or replace) the SoA kernels of a conjugacy family."""
    FAMILY_KERNELS[family.name] = family


def _family(name: Optional[str]) -> SlotFamily:
    fam = FAMILY_KERNELS.get(name)
    if fam is None:
        raise ChainStructureError(
            f"family {name!r} has no batched slot kernels; supported: "
            f"{sorted(FAMILY_KERNELS)}",
            reason="unsupported-family",
        )
    return fam


register_slot_family(
    SlotFamily(
        name="gaussian",
        sample=lambda mean, var, rng: rng.normal(mean, np.sqrt(var)),
        log_pdf=lambda mean, var, value: gaussian_log_prob(value, mean, var),
    )
)
register_slot_family(
    SlotFamily(
        name="mv_gaussian",
        vector=True,
        sample=lambda mean, cov, rng: mv_gaussian_sample(mean, cov, rng),
        log_pdf=lambda mean, cov, value: batched_mv_log_pdf(value, mean, cov),
    )
)
register_slot_family(
    SlotFamily(
        name="beta",
        per_particle_scale=True,
        sample=lambda alpha, beta, rng: rng.beta(alpha, beta),
        log_pdf=lambda alpha, beta, value: beta_log_prob(value, alpha, beta),
    )
)
register_slot_family(
    SlotFamily(
        name="bernoulli",
        has_scale=False,
        cast=bool,
        sample=lambda p, _unused, rng: bernoulli_sample(p, rng),
        log_pdf=lambda p, _unused, value: bernoulli_log_prob(value, p),
    )
)


def _poisson_slot_sample(p0, p1, rng):
    # p1 is None for a pure Poisson slot (rate p0); otherwise the slot
    # holds the Gamma-Poisson marginal NB(r=p0, p=p1/(p1+1)), drawn
    # through its exact compound form.
    lam = p0 if p1 is None else gamma_sample(p0, p1, rng)
    return rng.poisson(np.asarray(lam, dtype=float))


def _poisson_slot_log_pdf(p0, p1, value):
    if p1 is None:
        return poisson_log_prob(value, p0)
    return neg_binomial_log_prob(value, p0, p1)


register_slot_family(
    SlotFamily(
        name="gamma",
        per_particle_scale=True,
        sample=lambda shape, rate, rng: gamma_sample(shape, rate, rng),
        log_pdf=lambda shape, rate, value: gamma_log_prob(value, shape, rate),
    )
)
register_slot_family(
    SlotFamily(
        name="poisson",
        has_scale=False,
        cast=int,
        sample=_poisson_slot_sample,
        log_pdf=_poisson_slot_log_pdf,
    )
)
register_slot_family(
    SlotFamily(
        name="dirichlet",
        vector=True,
        has_scale=False,
        sample=lambda alpha, _unused, rng: dirichlet_sample(alpha, rng),
        log_pdf=lambda alpha, _unused, value: dirichlet_log_prob(value, alpha),
    )
)
register_slot_family(
    SlotFamily(
        name="categorical",
        vector=True,
        value_vector=False,
        has_scale=False,
        cast=int,
        sample=lambda probs, _unused, rng: categorical_sample(probs, rng),
        log_pdf=lambda probs, _unused, value: categorical_row_log_prob(
            value, probs
        ),
    )
)


# ----------------------------------------------------------------------
# batched conjugacy edges (the conditional distributions of the graph)
# ----------------------------------------------------------------------
class ScalarAffineEdge:
    """``x | y ~ N(a*y + b, var)``, scalar Gaussian parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.AffineGaussian`, with identical
    arithmetic (same operation order, same variance floor) so a batched
    chain reproduces the scalar graph's floats. ``a``, ``b``, and
    ``var`` may each be per-particle arrays — a masked observation
    (``a_i = 0`` where particle ``i`` distrusts the sensor) reduces the
    population update to exactly the masked Kalman blend the bespoke
    Outlier engine performed by hand.
    """

    __slots__ = ("a", "b", "var")
    parent_family = "gaussian"
    child_family = "gaussian"

    def __init__(self, a, b, var):
        self.a = a if isinstance(a, np.ndarray) else float(a)
        self.b = b if isinstance(b, np.ndarray) else float(b)
        # Scalar fast path first: pure chains construct one edge per
        # step per variable, and np.all on a float costs more than the
        # whole float comparison.
        if isinstance(var, np.ndarray):
            self.var = var
            if not np.all(var > 0.0):
                raise GraphError(f"conditional variance must be > 0, got {var!r}")
        else:
            self.var = float(var)
            if not self.var > 0.0:
                raise GraphError(f"conditional variance must be > 0, got {var!r}")

    def marginalize(self, mean, var):
        return self.a * mean + self.b, self.a * self.a * var + self.var

    def posterior(self, mean0, var0, value):
        innovation_var = self.a * self.a * var0 + self.var
        gain = var0 * self.a / innovation_var
        residual = value - (self.a * mean0 + self.b)
        post_mean = mean0 + gain * residual
        post_var = (1.0 - gain * self.a) * var0
        if isinstance(post_var, np.ndarray):
            post_var = np.maximum(post_var, 1e-300)
        else:
            post_var = max(post_var, 1e-300)
        return post_mean, post_var

    def at_value(self, parent_rows):
        return self.a * parent_rows + self.b, self.var


class ProjectionEdge:
    """Scalar ``x | y ~ N(row . y + b, var)``, MvGaussian parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.GaussianProjection`: scalar sensor
    readings (accelerometer, GPS) of a vector chain state. The
    projection row and variance are shared across particles.
    """

    __slots__ = ("row", "b", "var")
    parent_family = "mv_gaussian"
    child_family = "gaussian"

    def __init__(self, row, b, var: float):
        self.row = np.asarray(row, dtype=float).reshape(-1)
        self.b = b if isinstance(b, np.ndarray) else float(b)
        if isinstance(var, np.ndarray) and var.ndim > 0:
            raise ChainStructureError(
                "per-particle variances are not supported on projection edges"
            )
        self.var = float(var)
        if not self.var > 0.0:
            raise GraphError(f"conditional variance must be > 0, got {var!r}")

    def marginalize(self, mean, cov):
        out_mean = batched_rowdot(self.row, mean) + self.b
        out_var = float(self.row @ cov @ self.row) + self.var
        return out_mean, out_var

    def posterior(self, mean0, cov0, value):
        innovation_var = float(self.row @ cov0 @ self.row) + self.var
        gain = (cov0 @ self.row) / innovation_var
        residual = value - (batched_rowdot(self.row, mean0) + self.b)
        post_mean = mean0 + residual[:, None] * gain
        post_cov = cov0 - np.outer(gain, self.row @ cov0)
        post_cov = 0.5 * (post_cov + post_cov.T)  # re-symmetrize
        return post_mean, post_cov

    def at_value(self, parent_rows):
        return batched_rowdot(self.row, parent_rows) + self.b, self.var


class MvAffineEdge:
    """``x | y ~ N(A @ y + b, cov)``, MvGaussian parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.MvAffineGaussian`: the matrix
    Kalman relationship of the robot tracker's motion model.
    """

    __slots__ = ("a", "b", "cov")
    parent_family = "mv_gaussian"
    child_family = "mv_gaussian"

    def __init__(self, a, b, cov):
        self.a = np.asarray(a, dtype=float)
        self.b = np.asarray(b, dtype=float)
        self.cov = np.asarray(cov, dtype=float)
        if self.a.ndim != 2:
            raise GraphError("A must be a matrix")
        if self.cov.shape != (self.a.shape[0], self.a.shape[0]):
            raise GraphError("cov shape does not match A rows")

    def marginalize(self, mean, cov):
        out_mean = batched_matvec(self.a, mean) + self.b
        out_cov = self.a @ cov @ self.a.T + self.cov
        return out_mean, out_cov

    def posterior(self, mean0, cov0, value):
        innovation_cov = self.a @ cov0 @ self.a.T + self.cov
        gain = cov0 @ self.a.T @ np.linalg.pinv(innovation_cov)
        residual = np.asarray(value, dtype=float) - (
            batched_matvec(self.a, mean0) + self.b
        )
        post_mean = mean0 + batched_matvec(gain, residual)
        identity = np.eye(cov0.shape[0])
        post_cov = (identity - gain @ self.a) @ cov0
        post_cov = 0.5 * (post_cov + post_cov.T)  # re-symmetrize
        return post_mean, post_cov

    def at_value(self, parent_rows):
        return batched_matvec(self.a, parent_rows) + self.b, self.cov


class BetaBernoulliEdge:
    """``x | theta ~ Bernoulli(theta)``, Beta parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.BetaBernoulli`: marginalization is
    the posterior-predictive probability ``alpha/(alpha+beta)`` per
    particle, conditioning the conjugate count update — including on
    per-particle realized indicator arrays, the Outlier model's forced
    Bernoulli.
    """

    __slots__ = ()
    parent_family = "beta"
    child_family = "bernoulli"

    def marginalize(self, alpha, beta):
        return beta_bernoulli_predictive(alpha, beta), None

    def posterior(self, alpha, beta, value):
        return beta_bernoulli_update(value, alpha, beta)

    def at_value(self, parent_rows):
        return np.asarray(parent_rows, dtype=float), None


class GammaPoissonEdge:
    """``k | lam ~ Poisson(lam)``, Gamma parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.GammaPoisson`: marginalization is
    the negative-binomial compound ``NB(r=shape, p=rate/(rate+1))`` —
    stored on the child slot as the parent's ``(shape, rate)`` rows,
    which the "poisson" family kernels read directly — and conditioning
    is the conjugate count update ``(shape + k, rate + 1)``.
    """

    __slots__ = ()
    parent_family = "gamma"
    child_family = "poisson"

    def marginalize(self, shape, rate):
        return shape, rate

    def posterior(self, shape, rate, value):
        return shape + np.asarray(value, dtype=float), rate + 1.0

    def at_value(self, parent_rows):
        return np.asarray(parent_rows, dtype=float), None


class DirichletCategoricalEdge:
    """``z | theta ~ Categorical(theta)``, Dirichlet parent, batched.

    The batched counterpart of
    :class:`~repro.delayed.conjugacy.DirichletCategorical`:
    marginalization is the exact predictive ``Categorical(alpha /
    sum(alpha))`` per particle, conditioning adds one to the observed
    category's concentration — including for per-particle realized
    category arrays.
    """

    __slots__ = ()
    parent_family = "dirichlet"
    child_family = "categorical"

    def marginalize(self, alpha, _unused):
        alpha = np.asarray(alpha, dtype=float)
        return alpha / alpha.sum(axis=-1, keepdims=True), None

    def posterior(self, alpha, _unused, value):
        alpha = np.array(alpha, dtype=float)
        k = np.broadcast_to(np.asarray(value, dtype=int), alpha.shape[:-1])
        alpha[np.arange(alpha.shape[0]), k] += 1.0
        return alpha, None

    def at_value(self, parent_rows):
        return np.asarray(parent_rows, dtype=float), None


class BatchedNode:
    """Handle to one slot of a :class:`BatchedDSGraph`.

    This is what an :class:`~repro.symbolic.RVar` wraps under batched
    delayed sampling, so the existing symbolic machinery (affine
    extraction, expression evaluation) works unchanged; ``family`` and
    ``dim`` are the two attributes that machinery reads.
    """

    __slots__ = ("graph", "slot")

    def __init__(self, graph: "BatchedDSGraph", slot: int):
        self.graph = graph
        self.slot = int(slot)

    @property
    def family(self) -> str:
        return self.graph.family[self.slot]

    @property
    def dim(self) -> Optional[int]:
        return self.graph.slot_dim(self.slot)

    def __repr__(self) -> str:
        state = int(self.graph.node_state[self.slot])
        return f"BatchedNode(slot={self.slot}, state={state}, family={self.family})"


class BatchedDSGraph:
    """Streaming delayed-sampling state of all N particles, as arrays.

    Slot storage is structure-of-arrays: ``node_state`` (int8 lifecycle
    codes), ``parent`` / ``marginal_child`` (int32 slot links, -1 for
    none) are flat arrays over slots; ``mean`` holds one per-particle
    parameter array per slot (Gaussian means, Beta alphas, Bernoulli
    probabilities), ``var`` the slot's scale — a shared float /
    covariance on pure chains, a per-particle array for Beta betas and
    masked Gaussian updates — ``edge`` the conjugate conditional
    linking a slot to its parent, ``children`` the forward pointers of
    the streaming discipline, ``value_`` the realized values (a shared
    scalar / vector for observations, a per-particle array for sampled
    realizations). Which conjugacy arithmetic applies is the slot's
    ``family`` tag, dispatched through :data:`FAMILY_KERNELS`.

    Freed slots are recycled through a free list, so a steady-state
    model touches the same handful of slots forever — the batched
    version of the paper's constant-memory property (the per-slot sweep
    in :meth:`sweep` plays the role the garbage collector plays for the
    scalar pointer-minimal graph).
    """

    pointer_minimal = True

    def __init__(self, n: int, rng: Optional[np.random.Generator] = None):
        if n < 1:
            raise GraphError("need at least one particle")
        self.n = int(n)
        self.rng = rng
        capacity = 8
        self.node_state = np.zeros(capacity, dtype=np.int8)
        self.parent = np.full(capacity, -1, dtype=np.int32)
        self.marginal_child = np.full(capacity, -1, dtype=np.int32)
        self.folded = np.zeros(capacity, dtype=bool)
        self.family: List[Optional[str]] = [None] * capacity
        self.mean: List[Any] = [None] * capacity
        self.var: List[Any] = [None] * capacity
        self.value_: List[Any] = [None] * capacity
        self.edge: List[Any] = [None] * capacity
        self.children: List[List[int]] = [[] for _ in range(capacity)]
        self.name: List[str] = [""] * capacity
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        # Statistics (exposed for tests and the evaluation harness).
        self.n_assumed = 0
        self.n_realized = 0
        self.n_marginalized = 0

    # -- slot management ------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(self.node_state.size)

    def _grow(self) -> None:
        old = self.capacity
        new = old * 2
        self.node_state = np.concatenate(
            [self.node_state, np.zeros(old, dtype=np.int8)]
        )
        self.parent = np.concatenate([self.parent, np.full(old, -1, np.int32)])
        self.marginal_child = np.concatenate(
            [self.marginal_child, np.full(old, -1, np.int32)]
        )
        self.folded = np.concatenate([self.folded, np.zeros(old, dtype=bool)])
        for lst, fill in (
            (self.family, None),
            (self.mean, None),
            (self.var, None),
            (self.value_, None),
            (self.edge, None),
            (self.name, ""),
        ):
            lst.extend([fill] * old)
        self.children.extend([] for _ in range(old))
        self._free.extend(range(new - 1, old - 1, -1))

    def _alloc(self, family: str, name: str = "") -> int:
        if not self._free:
            self._grow()
        slot = self._free.pop()
        self.family[slot] = family
        self.name[slot] = name
        self.parent[slot] = -1
        self.marginal_child[slot] = -1
        self.folded[slot] = False
        self.children[slot] = []
        self.n_assumed += 1
        return slot

    def _release(self, slot: int) -> None:
        self.node_state[slot] = FREE
        self.parent[slot] = -1
        self.marginal_child[slot] = -1
        self.folded[slot] = False
        self.family[slot] = None
        self.mean[slot] = None
        self.var[slot] = None
        self.value_[slot] = None
        self.edge[slot] = None
        self.children[slot] = []
        self.name[slot] = ""
        self._free.append(slot)

    def live_slots(self) -> List[int]:
        """Slots currently holding a variable, in slot order."""
        return [int(s) for s in np.flatnonzero(self.node_state != FREE)]

    def slot_dim(self, slot: int) -> Optional[int]:
        """Dimension of a vector-valued slot (None for scalar values)."""
        if not _family(self.family[slot]).values_vector:
            return None
        mean = self.mean[slot]
        if isinstance(mean, np.ndarray) and mean.ndim == 2:
            return int(mean.shape[1])
        edge = self.edge[slot]
        if isinstance(edge, MvAffineEdge):
            return int(edge.a.shape[0])
        value = self.value_[slot]
        if isinstance(value, np.ndarray):
            return int(value.shape[-1])
        return None

    # -- broadcast helpers ----------------------------------------------
    def _mean_rows(self, const, family: str) -> np.ndarray:
        """Broadcast a (possibly shared) parameter to the particle axis."""
        arr = np.asarray(const, dtype=float)
        if not _family(family).vector:
            if arr.ndim == 0:
                return np.full(self.n, float(arr))
            if arr.shape == (self.n,):
                return arr
        else:
            if arr.ndim == 1:
                return np.tile(arr, (self.n, 1))
            if arr.ndim == 2 and arr.shape[0] == self.n:
                return arr
        raise ChainStructureError(
            f"cannot broadcast a parameter of shape {arr.shape} over "
            f"{self.n} particles",
            reason="shape",
        )

    def _scale_value(self, var, family: str) -> Any:
        """Coerce a slot's scale parameter to its storage form."""
        fam = _family(family)
        if not fam.has_scale:
            return None
        if fam.per_particle_scale:
            return self._mean_rows(var, family)
        if fam.vector:
            return np.asarray(var, dtype=float)
        if isinstance(var, np.ndarray) and var.ndim > 0:
            if var.shape != (self.n,):
                raise ChainStructureError(
                    f"per-particle variance must have shape ({self.n},), "
                    f"got {var.shape}",
                    reason="shape",
                )
            return np.asarray(var, dtype=float)
        return float(var)

    def _per_particle_scale(self, slot: int) -> bool:
        var = self.var[slot]
        return (
            isinstance(var, np.ndarray)
            and not _family(self.family[slot]).vector
            and var.ndim == 1
        )

    def _value_rows(self, slot: int) -> np.ndarray:
        """A realized slot's value, broadcast to the particle axis."""
        fam = _family(self.family[slot])
        value = self.value_[slot]
        if not fam.values_vector:
            if isinstance(value, np.ndarray) and value.ndim >= 1:
                return value
            return np.full(self.n, fam.cast(value))
        value = np.asarray(value, dtype=float)
        if value.ndim == 2:
            return value
        return np.tile(value, (self.n, 1))

    # ------------------------------------------------------------------
    # assume
    # ------------------------------------------------------------------
    def assume_root_dist(self, dist: Distribution, name: str = "") -> BatchedNode:
        """A parentless variable with a shared concrete marginal."""
        if isinstance(dist, Gaussian):
            return self.assume_root("gaussian", dist.mu, dist.var, name=name)
        if isinstance(dist, MvGaussian):
            return self.assume_root("mv_gaussian", dist.mu, dist.cov, name=name)
        if isinstance(dist, Beta):
            return self.assume_root("beta", dist.alpha, dist.beta, name=name)
        if isinstance(dist, Bernoulli):
            return self.assume_root("bernoulli", dist.p, None, name=name)
        if isinstance(dist, Gamma):
            return self.assume_root("gamma", dist.shape, dist.rate, name=name)
        if isinstance(dist, Poisson):
            return self.assume_root("poisson", dist.lam, None, name=name)
        if isinstance(dist, Dirichlet):
            return self.assume_root("dirichlet", dist.alpha, None, name=name)
        if isinstance(dist, Categorical):
            return self.assume_root("categorical", dist.probs, None, name=name)
        raise ChainStructureError(
            f"{type(dist).__name__} root has no batched slot family; "
            f"supported families: {sorted(FAMILY_KERNELS)}",
            reason="unsupported-family",
        )

    def assume_root(self, family: str, mean, var, name: str = "") -> BatchedNode:
        """A marginalized root: per-particle (or broadcast) parameter rows."""
        slot = self._alloc(family, name)
        self.mean[slot] = self._mean_rows(mean, family)
        self.var[slot] = self._scale_value(var, family)
        self.node_state[slot] = MARGINALIZED
        return BatchedNode(self, slot)

    def assume_conditional(
        self, edge: Any, parent: BatchedNode, name: str = ""
    ) -> BatchedNode:
        """A variable conditionally dependent on ``parent`` via ``edge``."""
        pslot = parent.slot
        if self.node_state[pslot] == REALIZED:
            mean, var = edge.at_value(self._value_rows(pslot))
            return self.assume_root(edge.child_family, mean, var, name=name)
        if self.family[pslot] != edge.parent_family:
            raise GraphError(
                f"conditional expects a {edge.parent_family} parent, "
                f"slot {pslot} has family {self.family[pslot]}"
            )
        slot = self._alloc(edge.child_family, name)
        self.parent[slot] = pslot
        self.edge[slot] = edge
        self.node_state[slot] = INITIALIZED
        return BatchedNode(self, slot)

    # ------------------------------------------------------------------
    # the M-path discipline (whole-population kernels)
    # ------------------------------------------------------------------
    def _live_marginal_child(self, slot: int) -> Optional[int]:
        child = int(self.marginal_child[slot])
        if child >= 0 and self.node_state[child] == MARGINALIZED:
            return child
        return None

    def graft(self, slot: int) -> None:
        """Make ``slot`` the terminal node of a marginalized path."""
        state = self.node_state[slot]
        if state == REALIZED:
            raise GraphError("cannot graft a realized node")
        if state == MARGINALIZED:
            child = self._live_marginal_child(slot)
            if child is not None:
                self.prune(child)
            self.marginal_child[slot] = -1
            return
        # Initialized: walk the backward chain iteratively, then
        # marginalize top-down (mirrors BaseGraph.graft). Grafting a
        # node in a tree whose anchored ancestor carries a different
        # marginalized branch prunes that branch with whole-population
        # posterior draws, exactly like the scalar graph.
        chain: List[int] = []
        cursor = slot
        while cursor >= 0 and self.node_state[cursor] == INITIALIZED:
            chain.append(cursor)
            cursor = int(self.parent[cursor])
        if cursor >= 0 and self.node_state[cursor] != REALIZED:
            self.graft(cursor)
        for link in reversed(chain):
            self.marginalize(link)

    def prune(self, slot: int) -> None:
        """Realize (by sampling) a whole marginalized sub-path below ``slot``."""
        if self.node_state[slot] != MARGINALIZED:
            raise GraphError("prune expects a marginalized node")
        chain: List[int] = [slot]
        cursor = self._live_marginal_child(slot)
        while cursor is not None:
            chain.append(cursor)
            cursor = self._live_marginal_child(cursor)
        for link in reversed(chain):
            mean, var = self.posterior_marginal(link)
            self.realize(link, self._sample(self.family[link], mean, var))

    def marginalize(self, slot: int) -> None:
        """Batched marginal of an initialized slot from its parent."""
        if self.node_state[slot] != INITIALIZED:
            raise GraphError("marginalize expects an initialized node")
        pslot = int(self.parent[slot])
        if pslot < 0:
            raise GraphError("initialized node has no parent")
        self.n_marginalized += 1
        if self.node_state[pslot] == REALIZED:
            # Parent realized while this node was initialized: the
            # conditional collapses and the node becomes a root.
            mean, var = self.edge[slot].at_value(self._value_rows(pslot))
            self.mean[slot] = self._mean_rows(mean, self.family[slot])
            self.var[slot] = self._scale_value(var, self.family[slot])
            self.node_state[slot] = MARGINALIZED
            self.parent[slot] = -1
            return
        if self.node_state[pslot] != MARGINALIZED:
            raise GraphError("parent of a marginalized node must be marginalized")
        live_child = self._live_marginal_child(pslot)
        if live_child is not None and live_child != slot:
            raise GraphError(
                "parent already has a marginalized child; graft should have pruned it"
            )
        pmean, pvar = self.posterior_marginal(pslot)
        mean, var = self.edge[slot].marginalize(pmean, pvar)
        self.mean[slot] = mean
        self.var[slot] = var
        self.node_state[slot] = MARGINALIZED
        self.marginal_child[pslot] = slot
        # Streaming pointer flip: forward pointer in, backward pointer out.
        self.children[pslot].append(slot)
        self.parent[slot] = -1

    def posterior_marginal(self, slot: int) -> Tuple[Any, Any]:
        """Marginal arrays of a marginalized slot, evidence folded in.

        Deferred conditioning, as in
        :meth:`~repro.delayed.streaming.StreamingGraph.posterior_marginal`:
        every realized, not-yet-folded child found through a forward
        pointer updates the marginal with one batched posterior kernel
        (a Kalman update, a Beta count update), after which the pointer
        is dropped. A tree parent may fold several realized children —
        one whole-population kernel each, in realization order.
        """
        if self.node_state[slot] != MARGINALIZED:
            raise GraphError("posterior_marginal expects a marginalized node")
        kids = self.children[slot]
        if kids:
            remaining: List[int] = []
            for child in kids:
                if self.node_state[child] == REALIZED and not self.folded[child]:
                    self.mean[slot], self.var[slot] = self.edge[child].posterior(
                        self.mean[slot], self.var[slot], self.value_[child]
                    )
                    self.folded[child] = True
                elif self.node_state[child] != REALIZED:
                    remaining.append(child)
            self.children[slot] = remaining
        return self.mean[slot], self.var[slot]

    def realize(self, slot: int, value: Any) -> None:
        """Assign per-particle (or shared) values to a marginalized slot."""
        if self.node_state[slot] != MARGINALIZED:
            raise GraphError("realize expects a marginalized node (graft first)")
        if self._live_marginal_child(slot) is not None:
            raise GraphError("cannot realize a node with a marginalized child")
        if self.parent[slot] >= 0:
            raise GraphError("streaming marginalized node still has a parent pointer")
        self.n_realized += 1
        self.value_[slot] = value
        self.node_state[slot] = REALIZED
        self.mean[slot] = None
        self.var[slot] = None
        self.marginal_child[slot] = -1
        # Forward pointers are dropped; initialized children keep their
        # backward pointer and collapse lazily in marginalize().
        self.children[slot] = []

    # ------------------------------------------------------------------
    # user-facing operations (Fig. 14's value / observe, batched)
    # ------------------------------------------------------------------
    def value(self, node: BatchedNode) -> np.ndarray:
        """Force per-particle values for ``node``, sampling if necessary."""
        slot = node.slot
        if self.node_state[slot] == REALIZED:
            return self._value_rows(slot)
        self.graft(slot)
        mean, var = self.posterior_marginal(slot)
        drawn = self._sample(self.family[slot], mean, var)
        self.realize(slot, drawn)
        return drawn

    def observe(self, node: BatchedNode, value: Any) -> np.ndarray:
        """Condition all particles on ``node == value``; per-particle scores.

        The score vector is the *marginal* (predictive) density of the
        observation under each particle's current marginal — the
        Rao-Blackwellized weight, as one array operation.
        """
        slot = node.slot
        if self.node_state[slot] == REALIZED:
            raise GraphError("cannot observe an already-realized node")
        self.graft(slot)
        mean, var = self.posterior_marginal(slot)
        log_weights = self._log_pdf(self.family[slot], mean, var, value)
        self.realize(slot, value)
        return log_weights

    def marginal_snapshot(self, node: BatchedNode) -> Tuple:
        """Current posterior marginal without realizing: ``(kind, ...)``.

        Returns ``("delta", rows)`` for realized slots,
        ``(family, p0, p1)`` otherwise; initialized chains are folded
        down from the nearest anchored ancestor without mutating the
        graph, mirroring :meth:`BaseGraph.marginal_snapshot`.
        """
        slot = node.slot
        state = self.node_state[slot]
        if state == REALIZED:
            return ("delta", self._value_rows(slot))
        if state == MARGINALIZED:
            mean, var = self.posterior_marginal(slot)
            return (self.family[slot], mean, var)
        chain: List[int] = []
        cursor = slot
        while cursor >= 0 and self.node_state[cursor] == INITIALIZED:
            chain.append(cursor)
            cursor = int(self.parent[cursor])
        if cursor < 0:
            raise GraphError("initialized node chain has no anchored ancestor")
        if self.node_state[cursor] == REALIZED:
            base: Optional[Tuple] = None
            base_rows = self._value_rows(cursor)
        else:
            mean, var = self.posterior_marginal(cursor)
            base = (self.family[cursor], mean, var)
            base_rows = None
        for link in reversed(chain):
            edge = self.edge[link]
            if base is None:
                mean, var = edge.at_value(base_rows)
            else:
                mean, var = edge.marginalize(base[1], base[2])
            base = (edge.child_family, self._mean_rows(mean, edge.child_family), var)
        return base

    # -- kernels --------------------------------------------------------
    def _sample(self, family: str, mean, var) -> np.ndarray:
        if self.rng is None:
            raise GraphError("graph has no generator bound for sampling")
        return _family(family).sample(mean, var, self.rng)

    def _log_pdf(self, family: str, mean, var, value) -> np.ndarray:
        return _family(family).log_pdf(mean, var, value)

    # ------------------------------------------------------------------
    # slot reclamation (the batched constant-memory property)
    # ------------------------------------------------------------------
    def sweep(self, roots: Iterable[int]) -> int:
        """Free every slot unreachable from ``roots`` via retained pointers.

        The scalar streaming graph gets this for free from Python's
        garbage collector: once the program drops its reference, nothing
        points backwards at an old node. Slot storage is owned by the
        graph, so reachability is made explicit — the same traversal as
        :func:`repro.delayed.graph.reachable_nodes`, over slot indices.
        Returns the number of slots freed.
        """
        marked = set()
        stack = [int(r) for r in roots if int(r) >= 0]
        while stack:
            slot = stack.pop()
            if slot in marked or self.node_state[slot] == FREE:
                continue
            marked.add(slot)
            for nxt in (int(self.parent[slot]), int(self.marginal_child[slot])):
                if nxt >= 0 and nxt not in marked:
                    stack.append(nxt)
            for nxt in self.children[slot]:
                if nxt not in marked:
                    stack.append(nxt)
        freed = 0
        for slot in self.live_slots():
            if slot not in marked:
                self._release(slot)
                freed += 1
        return freed

    # ------------------------------------------------------------------
    # row protocol (sharding / resampling transport)
    # ------------------------------------------------------------------
    def _clone_structure(self, n: int) -> "BatchedDSGraph":
        clone = object.__new__(type(self))
        clone.n = int(n)
        clone.rng = self.rng
        clone.node_state = self.node_state.copy()
        clone.parent = self.parent.copy()
        clone.marginal_child = self.marginal_child.copy()
        clone.folded = self.folded.copy()
        clone.family = list(self.family)
        clone.var = list(self.var)
        clone.edge = list(self.edge)
        clone.name = list(self.name)
        clone.children = [list(kids) for kids in self.children]
        clone._free = list(self._free)
        clone.n_assumed = self.n_assumed
        clone.n_realized = self.n_realized
        clone.n_marginalized = self.n_marginalized
        clone.mean = [None] * self.capacity
        clone.value_ = [None] * self.capacity
        return clone

    def _is_per_particle(self, slot: int, value: Any) -> bool:
        if not isinstance(value, np.ndarray):
            return False
        if not _family(self.family[slot]).values_vector:
            return value.ndim >= 1
        return value.ndim == 2

    def _map_rows(self, array_op, n: int) -> "BatchedDSGraph":
        clone = self._clone_structure(n)
        for slot in self.live_slots():
            mean = self.mean[slot]
            clone.mean[slot] = array_op(mean) if mean is not None else None
            if self._per_particle_scale(slot):
                clone.var[slot] = array_op(self.var[slot])
            value = self.value_[slot]
            if self._is_per_particle(slot, value):
                clone.value_[slot] = array_op(value)
            else:
                clone.value_[slot] = value
        return clone

    def batch_gather(self, indices: np.ndarray) -> "BatchedDSGraph":
        """Resample: per-particle arrays of every slot, indexed at once.

        The batched analogue of cloning selected particles' graphs —
        fresh arrays, so survivors never alias each other's storage.
        """
        indices = np.asarray(indices)
        return self._map_rows(lambda arr: arr[indices], int(indices.size))

    def batch_slice(self, start: int, stop: int) -> "BatchedDSGraph":
        """One contiguous particle range (a shard's view of the graph)."""
        return self._map_rows(lambda arr: arr[start:stop], stop - start)

    def batch_concat(
        self, tail: Iterable["BatchedDSGraph"]
    ) -> "BatchedDSGraph":
        """Merge per-shard graphs back into one population graph.

        Shards run the same model code in lockstep, so their slot
        structures are identical; only the per-particle arrays differ.
        """
        graphs = [self] + list(tail)
        for other in graphs[1:]:
            if not np.array_equal(other.node_state, self.node_state):
                raise GraphError(
                    "cannot concatenate batched graphs with different slot structure"
                )
        total = sum(g.n for g in graphs)
        clone = self._clone_structure(total)
        for slot in self.live_slots():
            if self.mean[slot] is not None:
                clone.mean[slot] = np.concatenate([g.mean[slot] for g in graphs])
            if self._per_particle_scale(slot):
                clone.var[slot] = np.concatenate([g.var[slot] for g in graphs])
            if self._is_per_particle(slot, self.value_[slot]):
                clone.value_[slot] = np.concatenate([g.value_[slot] for g in graphs])
            else:
                clone.value_[slot] = self.value_[slot]
        return clone

    def batch_rows(self) -> int:
        return self.n

    def batch_words(self) -> int:
        """Abstract heap words held live by the batched graph.

        The counterpart of :func:`repro.delayed.graph.graph_memory_words`
        summed over all particles' individual graphs: per-particle
        parameter and value arrays count per element, shared scales once.
        """
        words = 4 + self.capacity  # headers + the slot-state array
        for slot in self.live_slots():
            words += 8  # slot header (pointers, family, flags)
            mean = self.mean[slot]
            if mean is not None:
                words += int(mean.size)
            var = self.var[slot]
            if isinstance(var, np.ndarray):
                words += int(var.size)
            elif var is not None:
                words += 1
            value = self.value_[slot]
            if isinstance(value, np.ndarray):
                words += int(value.size)
            elif value is not None:
                words += 1
            if self.edge[slot] is not None:
                words += 4
        return words

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.n}, "
            f"live_slots={len(self.live_slots())})"
        )


#: back-compat alias: the PR-4 name of the graph, when it only covered
#: linear-Gaussian chains.
BatchedGaussianChainGraph = BatchedDSGraph


# ----------------------------------------------------------------------
# the probabilistic context over a batched graph
# ----------------------------------------------------------------------
class BatchedDelayedCtx(ProbCtx):
    """Delayed-sampling semantics for all particles at once.

    Handed to unmodified scalar model code: ``sample`` returns a
    symbolic reference over a batched slot, ``observe`` accumulates the
    per-particle log-weight *vector*, ``value`` realizes whole
    populations with one batched draw. Conjugacy detection mirrors
    :func:`repro.delayed.interface.assume` over the families with SoA
    kernels (Gaussian / MvGaussian affine edges, Beta-Bernoulli,
    Gamma-Poisson, Dirichlet-Categorical); non-conjugate dependencies
    are broken in-graph by realizing only the referenced slots
    (:meth:`_realized_param`), and only structure the graph cannot
    express raises :class:`ChainStructureError`, upon which the graph
    engine falls back to the scalar delayed samplers.
    """

    __slots__ = ("graph", "log_weight", "_counter")

    def __init__(self, graph: BatchedDSGraph):
        self.graph = graph
        self.log_weight: Any = 0.0
        self._counter = 0

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def sample(self, dist: Any) -> Any:
        return RVar(self._assume(dist, self._fresh_name("x")))

    def observe(self, dist: Any, value: Any) -> None:
        node = self._assume(dist, self._fresh_name("y"))
        concrete = self.value(value)
        self.log_weight = self.log_weight + self.graph.observe(node, concrete)

    def factor(self, log_score: Any) -> None:
        self.log_weight = self.log_weight + np.asarray(
            self.value(log_score), dtype=float
        )

    def value(self, expr: Any) -> Any:
        if not is_symbolic(expr):
            return expr
        return batched_eval(expr, self.graph)

    # -- conjugacy detection over the batched fragment -------------------
    def _count_realizations(self, expr: Any) -> None:
        """Count the not-yet-realized slots a dependency break will force."""
        stack = [expr]
        seen: set = set()
        while stack:
            e = stack.pop()
            if isinstance(e, RVar):
                node = e.node
                if (
                    isinstance(node, BatchedNode)
                    and node.graph is self.graph
                    and node.slot not in seen
                    and self.graph.node_state[node.slot] != REALIZED
                ):
                    seen.add(node.slot)
                    count_event(
                        "repro_slot_realizations_total",
                        labels={"family": node.family},
                    )
            elif isinstance(e, App):
                stack.extend(a for a in e.args if isinstance(a, SymExpr))

    def _realized_param(self, value: Any, what: str) -> Any:
        """A concrete (possibly per-particle) parameter.

        Symbolic parameters outside the conjugate fragment are handled
        by the in-graph dependency-breaking rule: realize *only* the
        slots the expression references (one batched posterior draw
        each, counted in ``repro_slot_realizations_total``), keep every
        other slot symbolic, and continue on the graph with per-particle
        concrete parameter rows. The batched counterpart of
        :func:`repro.delayed.interface._force_concrete`.
        """
        if isinstance(value, BatchConst):
            return value.values
        if not is_symbolic(value):
            return value
        self._count_realizations(value)
        return batched_eval(value, self.graph)

    def _assume(self, dist: Any, name: str) -> BatchedNode:
        graph = self.graph
        if isinstance(dist, Distribution):
            return graph.assume_root_dist(dist, name=name)
        if not isinstance(dist, SymDist):
            raise GraphError(
                f"assume expects a distribution, got {type(dist).__name__}"
            )
        kind = dist.kind
        if kind == "gaussian":
            mean, var = dist.params
            var = self._realized_param(var, "variance")
            if not isinstance(var, np.ndarray):
                var = float(var)
            form = extract_affine(mean)
            if form is None:
                # Non-affine mean (x * x, …): realize the referenced
                # slots only and continue as a root with per-particle
                # mean rows.
                mean = self._realized_param(mean, "mean")
                return graph.assume_root("gaussian", mean, var, name=name)
            if form.rv is None:
                return graph.assume_root("gaussian", form.const, var, name=name)
            parent = self._chain_parent(form.rv)
            coeff = form.coeff
            if parent.family == "gaussian" and np.ndim(coeff) == 0:
                edge = ScalarAffineEdge(float(coeff), form.const, var)
            elif parent.family == "gaussian" and np.ndim(coeff) == 1:
                # A per-particle coefficient row: the masked affine
                # observation of a forced indicator (Outlier). Zero
                # entries make the conditional ignore the chain for
                # those particles — the masked Kalman update.
                coeff = np.asarray(coeff, dtype=float)
                if coeff.shape != (graph.n,):
                    raise ChainStructureError(
                        "per-particle Gaussian coefficient must have one "
                        f"entry per particle, got shape {coeff.shape}",
                        reason="shape",
                    )
                edge = ScalarAffineEdge(coeff, form.const, var)
            elif parent.family == "mv_gaussian" and np.ndim(coeff) == 1:
                edge = ProjectionEdge(coeff, form.const, var)
            else:
                # Affine in a non-Gaussian variable (a Gamma rate used
                # as a location, say): no conjugate edge — break the
                # dependency and continue.
                mean = self._realized_param(mean, "mean")
                return graph.assume_root("gaussian", mean, var, name=name)
            return graph.assume_conditional(edge, parent, name=name)
        if kind == "mv_gaussian":
            mean, cov = dist.params
            cov = self._realized_param(cov, "covariance")
            form = extract_affine(mean)
            if form is not None and form.rv is None:
                return graph.assume_root("mv_gaussian", form.const, cov, name=name)
            if form is not None:
                parent = self._chain_parent(form.rv)
                if parent.family == "mv_gaussian" and np.ndim(form.coeff) == 2:
                    edge = MvAffineEdge(form.coeff, form.const, cov)
                    return graph.assume_conditional(edge, parent, name=name)
            mean = self._realized_param(mean, "mean")
            return graph.assume_root("mv_gaussian", mean, cov, name=name)
        if kind == "beta":
            alpha, b = dist.params
            alpha = self._realized_param(alpha, "Beta parameter")
            b = self._realized_param(b, "Beta parameter")
            return graph.assume_root("beta", alpha, b, name=name)
        if kind == "bernoulli":
            (p,) = dist.params
            if isinstance(p, RVar):
                parent = self._chain_parent(p.node)
                if parent.family == "beta":
                    return graph.assume_conditional(
                        BetaBernoulliEdge(), parent, name=name
                    )
            p = self._realized_param(p, "Bernoulli probability")
            return graph.assume_root("bernoulli", p, None, name=name)
        if kind == "gamma":
            shape, rate = dist.params
            shape = self._realized_param(shape, "Gamma shape")
            rate = self._realized_param(rate, "Gamma rate")
            return graph.assume_root("gamma", shape, rate, name=name)
        if kind == "poisson":
            (lam,) = dist.params
            if isinstance(lam, RVar):
                parent = self._chain_parent(lam.node)
                if parent.family == "gamma":
                    return graph.assume_conditional(
                        GammaPoissonEdge(), parent, name=name
                    )
            lam = self._realized_param(lam, "Poisson rate")
            return graph.assume_root("poisson", lam, None, name=name)
        if kind == "dirichlet":
            (alpha,) = dist.params
            alpha = self._realized_param(alpha, "Dirichlet concentration")
            return graph.assume_root("dirichlet", alpha, None, name=name)
        if kind == "categorical":
            (probs,) = dist.params
            if isinstance(probs, RVar):
                parent = self._chain_parent(probs.node)
                if parent.family == "dirichlet":
                    return graph.assume_conditional(
                        DirichletCategoricalEdge(), parent, name=name
                    )
            probs = self._realized_param(probs, "Categorical probabilities")
            return graph.assume_root("categorical", probs, None, name=name)
        raise ChainStructureError(
            f"distribution family {kind!r} is outside the batched "
            "delayed-sampling fragment",
            reason="unsupported-family",
        )

    def _chain_parent(self, node: Any) -> BatchedNode:
        if not isinstance(node, BatchedNode) or node.graph is not self.graph:
            raise ChainStructureError(
                "expression references a variable from another graph"
            )
        return node


def batched_eval(expr: Any, graph: BatchedDSGraph) -> Any:
    """Evaluate a symbolic tree over per-particle arrays.

    The batched counterpart of :func:`repro.symbolic.eval_expr`:
    variables realize to particle-major arrays, so the two structural
    operators change meaning — ``getitem`` extracts a *component*
    column (not a particle row) and ``matvec`` applies the matrix to
    every row with the row-stable kernel. Elementwise arithmetic
    broadcasts unchanged.
    """
    if isinstance(expr, RVar):
        return graph.value(expr.node)
    if isinstance(expr, BatchConst):
        return expr.values
    if isinstance(expr, App):
        args = [batched_eval(a, graph) for a in expr.args]
        op = expr.op
        if op == "getitem":
            target, index = args
            target = np.asarray(target)
            if target.ndim == 2:
                return target[:, index]
            return target[index]
        if op == "matvec":
            matrix, vector = args
            vector = np.asarray(vector)
            if vector.ndim == 2:
                return batched_matvec(matrix, vector)
            return np.asarray(matrix) @ vector
        if op == "add":
            return args[0] + args[1]
        if op == "sub":
            return args[0] - args[1]
        if op == "mul":
            return args[0] * args[1]
        if op == "div":
            return args[0] / args[1]
        if op == "neg":
            return -args[0]
        raise ChainStructureError(
            f"operator {op!r} has no batched evaluation rule",
            reason="unsupported-op",
        )
    if isinstance(expr, tuple):
        return tuple(batched_eval(v, graph) for v in expr)
    if isinstance(expr, list):
        return [batched_eval(v, graph) for v in expr]
    if isinstance(expr, dict):
        return {k: batched_eval(v, graph) for k, v in expr.items()}
    return expr


# ----------------------------------------------------------------------
# engine-facing state and output containers (row-protocol leaves)
# ----------------------------------------------------------------------
class ChainOuts:
    """Stacked per-particle step outputs of a graph engine.

    ``kind`` is a slot family tag — ``"gaussian"`` (mean rows + shared
    or per-particle variance), ``"mv_gaussian"`` (mean matrix + shared
    covariance), ``"beta"`` (alpha rows + beta rows), ``"bernoulli"``
    (probability rows), ``"gamma"`` (shape rows + rate rows),
    ``"poisson"`` (rate rows, or NB shape/rate rows), ``"dirichlet"`` /
    ``"categorical"`` (concentration / probability row matrices) — or
    ``"delta"`` (concrete value rows, the BDS case). Implements the row
    protocol so per-shard outputs merge
    through the ordinary engine plan; a per-particle ``var`` (Beta
    betas, masked Gaussian variances) rides the row operations along
    with ``mean``.
    """

    __slots__ = ("kind", "mean", "var")

    def __init__(self, kind: str, mean: np.ndarray, var: Any = None):
        self.kind = kind
        self.mean = np.asarray(mean)
        self.var = var

    def batch_rows(self) -> int:
        return int(self.mean.shape[0])

    def _per_particle_var(self) -> bool:
        return (
            isinstance(self.var, np.ndarray)
            and self.kind in ("gaussian", "beta", "bernoulli", "gamma", "poisson")
            and self.var.ndim == 1
        )

    def _map_var(self, array_op) -> Any:
        return array_op(self.var) if self._per_particle_var() else self.var

    def batch_gather(self, indices: np.ndarray) -> "ChainOuts":
        return ChainOuts(
            self.kind, self.mean[indices], self._map_var(lambda a: a[indices])
        )

    def batch_slice(self, start: int, stop: int) -> "ChainOuts":
        return ChainOuts(
            self.kind,
            self.mean[start:stop],
            self._map_var(lambda a: a[start:stop]),
        )

    def batch_concat(self, tail: Iterable["ChainOuts"]) -> "ChainOuts":
        outs = [self] + list(tail)
        if any(o.kind != self.kind for o in outs):
            raise GraphError("cannot concatenate chain outputs of different kinds")
        if self._per_particle_var():
            var = np.concatenate([o.var for o in outs])
        else:
            var = self.var
        return ChainOuts(self.kind, np.concatenate([o.mean for o in outs]), var)

    def batch_words(self) -> int:
        words = 2 + int(self.mean.size)
        if isinstance(self.var, np.ndarray):
            words += int(self.var.size)
        elif self.var is not None:
            words += 1
        return words

    def __repr__(self) -> str:
        return f"ChainOuts(kind={self.kind}, n={self.batch_rows()})"


# Register ChainOuts with the shared-memory transport: a resident chain
# engine's dominant reply payload is the output mean matrix inside this
# opaque object, which the structural walk of ShmRing.pack would
# otherwise ship fully pickled. Both sides of the pipe import this
# module (workers unpickle the engine), so the codec exists everywhere.
from repro.exec.shm import register_shm_leaf  # noqa: E402

register_shm_leaf(
    ChainOuts,
    lambda outs: (outs.kind, outs.mean, outs.var),
    lambda parts: ChainOuts(*parts),
)


def _map_leaves(value: Any, fn) -> Any:
    """Rebuild a state pytree, applying ``fn`` to every non-container leaf."""
    if isinstance(value, tuple):
        return tuple(_map_leaves(v, fn) for v in value)
    if isinstance(value, list):
        return [_map_leaves(v, fn) for v in value]
    if isinstance(value, dict):
        return {k: _map_leaves(v, fn) for k, v in value.items()}
    return fn(value)


def _zip_leaves(values: List[Any], fn) -> Any:
    """Rebuild parallel state pytrees into one, applying ``fn`` leafwise."""
    head = values[0]
    if isinstance(head, tuple):
        return tuple(_zip_leaves(list(parts), fn) for parts in zip(*values))
    if isinstance(head, list):
        return [_zip_leaves(list(parts), fn) for parts in zip(*values)]
    if isinstance(head, dict):
        return {k: _zip_leaves([v[k] for v in values], fn) for k in head}
    return fn(values)


def _remap_expr(expr: Any, graph: BatchedDSGraph) -> Any:
    """Re-point every RVar inside a symbolic expression at ``graph``."""
    if isinstance(expr, RVar):
        return RVar(BatchedNode(graph, expr.node.slot))
    if isinstance(expr, App):
        return App(expr.op, tuple(_remap_expr(a, graph) for a in expr.args))
    return expr


class ChainState:
    """One engine-state leaf: the batched graph plus the model state.

    ``model_state`` is the scalar model's state pytree whose leaves may
    be symbolic references into ``graph`` (SDS), per-particle arrays
    (BDS, after forced realization), or shared constants. Implements the
    row protocol, so resampling, sharding, and the worker-resident
    shard operations all go through the ordinary
    :mod:`repro.vectorized.batch` helpers.
    """

    __slots__ = ("graph", "model_state", "n")

    def __init__(
        self,
        graph: Optional[BatchedDSGraph],
        model_state: Any,
        n: int,
    ):
        self.graph = graph
        self.model_state = model_state
        self.n = int(n)

    def slot_roots(self) -> List[int]:
        """Graph slots referenced by the model state (the sweep roots)."""
        roots: List[int] = []

        def visit(leaf: Any) -> Any:
            if isinstance(leaf, SymExpr):
                stack = [leaf]
                while stack:
                    expr = stack.pop()
                    if isinstance(expr, RVar):
                        roots.append(expr.node.slot)
                    elif isinstance(expr, App):
                        stack.extend(
                            a for a in expr.args if isinstance(a, SymExpr)
                        )
            return leaf

        _map_leaves(self.model_state, visit)
        return roots

    def _transform(self, new_graph, array_op, n_new: int) -> "ChainState":
        def leaf(value: Any) -> Any:
            if isinstance(value, SymExpr):
                if new_graph is None:
                    raise GraphError("symbolic state leaf without a graph")
                return _remap_expr(value, new_graph)
            if isinstance(value, np.ndarray) and value.ndim >= 1 and (
                value.shape[0] == self.n
            ):
                return array_op(value)
            return value

        return ChainState(new_graph, _map_leaves(self.model_state, leaf), n_new)

    def batch_rows(self) -> int:
        return self.n

    def batch_gather(self, indices: np.ndarray) -> "ChainState":
        indices = np.asarray(indices)
        new_graph = (
            self.graph.batch_gather(indices) if self.graph is not None else None
        )
        return self._transform(new_graph, lambda a: a[indices], int(indices.size))

    def batch_slice(self, start: int, stop: int) -> "ChainState":
        new_graph = (
            self.graph.batch_slice(start, stop) if self.graph is not None else None
        )
        return self._transform(new_graph, lambda a: a[start:stop], stop - start)

    def batch_concat(self, tail: Iterable["ChainState"]) -> "ChainState":
        states = [self] + list(tail)
        total = sum(s.n for s in states)
        if self.graph is not None:
            new_graph = self.graph.batch_concat([s.graph for s in states[1:]])
        else:
            new_graph = None

        def leaf(values: List[Any]) -> Any:
            head = values[0]
            if isinstance(head, SymExpr):
                if new_graph is None:
                    raise GraphError("symbolic state leaf without a graph")
                return _remap_expr(head, new_graph)
            # Same per-particle predicate as _transform: a leaf whose
            # leading axis is the shard's particle count concatenates;
            # shared arrays (fixed parameter vectors) pass through — the
            # slice left them intact, so the merge must too.
            if (
                isinstance(head, np.ndarray)
                and head.ndim >= 1
                and head.shape[0] == self.n
            ):
                return np.concatenate(values)
            return head

        return ChainState(
            new_graph, _zip_leaves([s.model_state for s in states], leaf), total
        )

    def batch_words(self) -> int:
        words = 2
        if self.graph is not None:
            words += self.graph.batch_words()

        def leaf(value: Any) -> Any:
            nonlocal words
            if isinstance(value, np.ndarray):
                words += 1 + int(value.size)
            elif value is not None and not isinstance(value, SymExpr):
                words += 1
            return value

        _map_leaves(self.model_state, leaf)
        return words

    def __repr__(self) -> str:
        mode = "sds" if self.graph is not None else "bds"
        return f"ChainState(n={self.n}, mode={mode})"


def wrap_batch_state(model_state: Any, n: int) -> Any:
    """Wrap per-particle array leaves as :class:`BatchConst` expressions.

    The BDS engine stores forced realizations as plain arrays between
    steps; wrapping them before the next ``model.step`` lets scalar
    model code (``gaussian(state, v)``) lift them into symbolic
    distribution terms the batched ``assume`` understands.
    """

    def leaf(value: Any) -> Any:
        if isinstance(value, np.ndarray) and value.ndim >= 1 and value.shape[0] == n:
            return BatchConst(value)
        return value

    return _map_leaves(model_state, leaf)


def lift_output(
    graph: BatchedDSGraph, expr: Any, n: int
) -> ChainOuts:
    """The batched ``distribution(e, g)`` of Section 5.3 for one output.

    Mirrors :func:`repro.delayed.interface.lift_distribution`: concrete
    values lift to delta rows, a bare variable reports its marginal
    snapshot (any slot family), affine images of Gaussian variables
    transform in closed form, and non-affine terms force realization —
    all as population-sized arrays.
    """
    if not is_symbolic(expr):
        return ChainOuts("delta", delta_rows(expr, n))
    if isinstance(expr, BatchConst):
        return ChainOuts("delta", delta_rows(expr.values, n))
    if isinstance(expr, RVar):
        return _outs_from_snapshot(graph.marginal_snapshot(expr.node), n)
    form = extract_affine(expr) if isinstance(expr, SymExpr) else None
    if form is not None and isinstance(form.rv, BatchedNode):
        snap = graph.marginal_snapshot(form.rv)
        transformed = _affine_outs(snap, form.coeff, form.const, n)
        if transformed is not None:
            return transformed
    # Fallback: force realization (the dependency-breaking rule).
    return ChainOuts("delta", delta_rows(batched_eval(expr, graph), n))


def delta_rows(value: Any, n: int) -> np.ndarray:
    """Broadcast a concrete output to the particle axis.

    Scalars fan out to ``(n,)``; shared vectors tile to ``(n, d)``;
    arrays whose leading axis is already the particle count pass
    through. Used by the lift and by the BDS engine's forced outputs.
    """
    arr = np.asarray(value, dtype=float)
    if arr.ndim == 0:
        return np.full(n, float(arr))
    if arr.shape[0] != n:
        return np.tile(arr, (n, 1))
    return arr


def _outs_from_snapshot(snap: Tuple, n: int) -> ChainOuts:
    if snap[0] == "delta":
        return ChainOuts("delta", snap[1])
    kind, mean, var = snap
    return ChainOuts(kind, mean, var)


def _affine_outs(snap: Tuple, coeff: Any, const: Any, n: int) -> Optional[ChainOuts]:
    """Closed-form outputs of ``coeff * X + const`` given X's snapshot.

    Only Gaussian snapshots transform in closed form; Beta / Bernoulli
    snapshots report None so the caller falls back to forced
    realization (the dependency-breaking rule).
    """
    if snap[0] == "delta":
        rows = snap[1]
        if np.ndim(coeff) == 0:
            return ChainOuts("delta", coeff * rows + const)
        if np.ndim(coeff) == 1 and rows.ndim == 2:
            return ChainOuts("delta", batched_rowdot(coeff, rows) + const)
        if np.ndim(coeff) == 2 and rows.ndim == 2:
            return ChainOuts("delta", batched_matvec(coeff, rows) + const)
        return None
    kind, mean, var = snap
    if kind == "gaussian" and np.ndim(coeff) == 0:
        coeff = float(coeff)
        if coeff == 0.0:
            return ChainOuts("delta", delta_rows(const, n))
        return ChainOuts("gaussian", coeff * mean + const, coeff * coeff * var)
    if kind == "mv_gaussian" and np.ndim(coeff) == 1:
        row = np.asarray(coeff, dtype=float)
        out_var = float(row @ var @ row)
        out_mean = batched_rowdot(row, mean) + const
        if out_var <= 0.0:
            return ChainOuts("delta", out_mean)
        return ChainOuts("gaussian", out_mean, out_var)
    if kind == "mv_gaussian" and np.ndim(coeff) == 2:
        a = np.asarray(coeff, dtype=float)
        return ChainOuts(
            "mv_gaussian", batched_matvec(a, mean) + const, a @ var @ a.T
        )
    return None
