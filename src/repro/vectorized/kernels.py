"""Batched distribution kernels.

The scalar :class:`~repro.dists.base.Distribution` interface draws and
scores one value at a time. The vectorized engines instead need *array*
operations: draw ``n`` values in one call, score ``n`` values in one
call. Two layers are provided:

* :func:`sample_n` / :func:`log_prob` — batched operations on an
  existing scalar distribution object (shared parameters, ``n``
  independent draws). Dispatch is by distribution type through the
  ``BATCH_KERNELS`` registry; :func:`supports_batch` reports coverage.
* array-parameter kernels (:func:`gaussian_sample`,
  :func:`gaussian_log_prob`, :func:`bernoulli_log_prob`, …) — the
  per-particle-parameter case the vectorized models use directly: the
  ``i``-th draw uses the ``i``-th row of the parameter arrays.

Both layers are pure NumPy; the fallback path for uncovered
distribution types is a Python loop over the scalar interface, so
``sample_n`` / ``log_prob`` are total even for exotic distributions.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Tuple, Type

import numpy as np

from repro.dists import (
    Bernoulli,
    Beta,
    Categorical,
    Distribution,
    Gaussian,
    MvGaussian,
)

__all__ = [
    "BATCH_KERNELS",
    "supports_batch",
    "sample_n",
    "log_prob",
    "gaussian_sample",
    "gaussian_log_prob",
    "bernoulli_sample",
    "bernoulli_log_prob",
    "beta_sample",
    "beta_log_prob",
    "categorical_sample",
    "categorical_row_log_prob",
    "gamma_sample",
    "gamma_log_prob",
    "poisson_log_prob",
    "neg_binomial_sample",
    "neg_binomial_log_prob",
    "dirichlet_sample",
    "dirichlet_log_prob",
    "beta_bernoulli_predictive",
    "beta_bernoulli_log_prob",
    "beta_bernoulli_update",
    "mv_gaussian_svd_factor",
    "mv_gaussian_sample",
]

_LOG_2PI = math.log(2.0 * math.pi)


# ----------------------------------------------------------------------
# array-parameter kernels (one parameter row per particle)
# ----------------------------------------------------------------------
def gaussian_sample(mu, var, rng: np.random.Generator) -> np.ndarray:
    """Draw ``x_i ~ N(mu_i, var_i)``; parameters broadcast elementwise."""
    return rng.normal(np.asarray(mu, dtype=float), np.sqrt(var))


def gaussian_log_prob(value, mu, var) -> np.ndarray:
    """Elementwise ``log N(value_i; mu_i, var_i)``."""
    value = np.asarray(value, dtype=float)
    mu = np.asarray(mu, dtype=float)
    var = np.asarray(var, dtype=float)
    diff = value - mu
    return -0.5 * (_LOG_2PI + np.log(var) + diff * diff / var)


def bernoulli_sample(p, rng: np.random.Generator) -> np.ndarray:
    """Draw ``b_i ~ Bernoulli(p_i)`` as a boolean array."""
    p = np.asarray(p, dtype=float)
    return rng.random(p.shape) < p


def bernoulli_log_prob(value, p) -> np.ndarray:
    """Elementwise Bernoulli log mass; ``-inf`` where the mass is zero."""
    success = np.asarray(value, dtype=bool)
    p = np.asarray(p, dtype=float)
    prob = np.where(success, p, 1.0 - p)
    with np.errstate(divide="ignore"):
        return np.where(prob > 0.0, np.log(np.maximum(prob, 1e-300)), -np.inf)


def beta_sample(alpha, beta, rng: np.random.Generator) -> np.ndarray:
    """Draw ``x_i ~ Beta(alpha_i, beta_i)``; parameters broadcast."""
    return rng.beta(np.asarray(alpha, dtype=float), np.asarray(beta, dtype=float))


_lgamma = np.vectorize(math.lgamma, otypes=[float])


def beta_log_prob(value, alpha, beta) -> np.ndarray:
    """Elementwise Beta log-density with per-particle parameters.

    The array-parameter counterpart of ``Beta.log_pdf`` used by the
    generic batched delayed-sampling graph when a Beta slot is observed
    or scored: the ``i``-th value is scored under
    ``Beta(alpha_i, beta_i)``; values outside ``(0, 1)`` score ``-inf``.
    (NumPy has no ``lgamma`` ufunc, so the normalizer is a vectorized
    Python loop — paid only on observe-a-Beta paths, never per chain
    step.)
    """
    value = np.asarray(value, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    log_norm = _lgamma(alpha + beta) - _lgamma(alpha) - _lgamma(beta)
    inside = (value > 0.0) & (value < 1.0)
    safe = np.where(inside, value, 0.5)
    logp = (
        log_norm
        + (alpha - 1.0) * np.log(safe)
        + (beta - 1.0) * np.log1p(-safe)
    )
    return np.where(inside, logp, -np.inf)


def categorical_sample(probs: np.ndarray, rng: np.random.Generator) -> np.ndarray:
    """Draw one category per row of an ``(n, k)`` probability matrix.

    Implemented as an inverse-CDF lookup so the whole batch is one
    cumulative sum plus one comparison — no per-row ``rng.choice``.
    """
    probs = np.asarray(probs, dtype=float)
    cumulative = np.cumsum(probs, axis=-1)
    cumulative[..., -1] = 1.0  # guard against round-off
    u = rng.random(probs.shape[:-1] + (1,))
    return np.sum(u > cumulative, axis=-1).astype(int)


def categorical_row_log_prob(value, probs) -> np.ndarray:
    """Score one category per row of an ``(n, k)`` probability matrix.

    ``value`` is a scalar category (one observation conditioning every
    particle) or an ``(n,)`` integer array of realized categories.
    Out-of-range categories score ``-inf``.
    """
    probs = np.asarray(probs, dtype=float)
    k = np.broadcast_to(np.asarray(value, dtype=int), probs.shape[:-1])
    inside = (k >= 0) & (k < probs.shape[-1])
    safe = np.where(inside, k, 0)
    p = np.take_along_axis(probs, safe[..., None], axis=-1)[..., 0]
    with np.errstate(divide="ignore"):
        logp = np.where(p > 0.0, np.log(np.maximum(p, 1e-300)), -np.inf)
    return np.where(inside, logp, -np.inf)


def gamma_sample(shape, rate, rng: np.random.Generator) -> np.ndarray:
    """Draw ``x_i ~ Gamma(shape_i, rate_i)`` (rate parameterization)."""
    shape = np.asarray(shape, dtype=float)
    rate = np.asarray(rate, dtype=float)
    return rng.gamma(shape, 1.0 / rate)


def gamma_log_prob(value, shape, rate) -> np.ndarray:
    """Elementwise Gamma log-density; values ``<= 0`` score ``-inf``."""
    value = np.asarray(value, dtype=float)
    shape = np.asarray(shape, dtype=float)
    rate = np.asarray(rate, dtype=float)
    inside = value > 0.0
    safe = np.where(inside, value, 1.0)
    logp = (
        shape * np.log(rate)
        - _lgamma(shape)
        + (shape - 1.0) * np.log(safe)
        - rate * safe
    )
    return np.where(inside, logp, -np.inf)


def poisson_log_prob(value, lam) -> np.ndarray:
    """Elementwise Poisson log-mass; negative counts score ``-inf``."""
    k = np.asarray(value, dtype=float)
    lam = np.asarray(lam, dtype=float)
    inside = (k >= 0.0) & (k == np.floor(k))
    safe = np.where(inside, k, 0.0)
    logp = safe * np.log(lam) - lam - _lgamma(safe + 1.0)
    return np.where(inside, logp, -np.inf)


def neg_binomial_sample(shape, rate, rng: np.random.Generator) -> np.ndarray:
    """Draw from ``NB(r=shape_i, p=rate_i/(rate_i+1))`` via its
    Gamma-Poisson compound form, which is distributionally exact:
    ``lam_i ~ Gamma(shape_i, rate_i)``, ``k_i ~ Poisson(lam_i)``."""
    return rng.poisson(gamma_sample(shape, rate, rng))


def neg_binomial_log_prob(value, shape, rate) -> np.ndarray:
    """Log mass of the Gamma-Poisson marginal (negative binomial).

    This is the Rao-Blackwellized ``observe`` weight of delayed
    sampling on count data: the Gamma rate stays symbolic and the
    count is scored under ``NB(r=shape, p=rate/(rate+1))`` — the same
    parameterization as the scalar
    :class:`repro.delayed.conjugacy._NegativeBinomialMarginal`.
    """
    k = np.asarray(value, dtype=float)
    r = np.asarray(shape, dtype=float)
    rate = np.asarray(rate, dtype=float)
    inside = (k >= 0.0) & (k == np.floor(k))
    safe = np.where(inside, k, 0.0)
    log_p = np.log(rate) - np.log1p(rate)
    log_1mp = -np.log1p(rate)
    logp = (
        _lgamma(safe + r)
        - _lgamma(r)
        - _lgamma(safe + 1.0)
        + r * log_p
        + safe * log_1mp
    )
    return np.where(inside, logp, -np.inf)


def dirichlet_sample(alpha, rng: np.random.Generator) -> np.ndarray:
    """Draw one Dirichlet vector per row of an ``(n, k)`` alpha matrix.

    ``Generator.dirichlet`` only accepts a single parameter vector, so
    the batch is drawn through the standard Gamma representation:
    ``g_ij ~ Gamma(alpha_ij, 1)`` normalized per row.
    """
    g = rng.standard_gamma(np.asarray(alpha, dtype=float))
    return g / g.sum(axis=-1, keepdims=True)


def dirichlet_log_prob(value, alpha) -> np.ndarray:
    """Per-row Dirichlet log-density for ``(n, k)`` values and alphas."""
    value = np.asarray(value, dtype=float)
    alpha = np.asarray(alpha, dtype=float)
    inside = np.all(value > 0.0, axis=-1) & np.all(value < 1.0, axis=-1)
    safe = np.where(value > 0.0, value, 0.5)
    log_norm = _lgamma(alpha.sum(axis=-1)) - _lgamma(alpha).sum(axis=-1)
    logp = log_norm + ((alpha - 1.0) * np.log(safe)).sum(axis=-1)
    return np.where(inside, logp, -np.inf)


def mv_gaussian_svd_factor(cov) -> np.ndarray:
    """The ``sqrt(s)[:, None] * vh`` factor of NumPy's svd sampling path.

    :meth:`numpy.random.Generator.multivariate_normal` (``method="svd"``)
    transforms standard normals as ``z @ (sqrt(s)[:, None] * vh)``;
    computing the factor once per shared covariance lets a batched draw
    consume the generator stream exactly as ``n`` sequential scalar
    calls would.
    """
    _, s, vh = np.linalg.svd(np.asarray(cov, dtype=float))
    return np.sqrt(s)[:, None] * vh


def mv_gaussian_sample(
    means: np.ndarray, cov, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``x_i ~ N(mean_i, cov)`` with per-particle means, shared cov.

    One ``standard_normal((n, d))`` call consumes the stream in the same
    particle-major order as ``n`` sequential
    ``rng.multivariate_normal(mean_i, cov, method="svd")`` calls, so a
    batched chain engine replays the scalar engines' randomness. The
    transform is applied with the row-stable kernel of
    :func:`repro.dists.mv_gaussian.batched_matvec`, so sharded execution
    reproduces the unsharded draw bit for bit.
    """
    from repro.dists.mv_gaussian import batched_matvec

    means = np.asarray(means, dtype=float)
    factor = mv_gaussian_svd_factor(cov)
    z = rng.standard_normal(means.shape)
    return means + batched_matvec(factor.T, z)


# ----------------------------------------------------------------------
# conjugate Beta-Bernoulli kernels (the delayed-sampling arithmetic of
# the Coin/Outlier models, batched: one (alpha_i, beta_i) per particle)
# ----------------------------------------------------------------------
def beta_bernoulli_predictive(alpha, beta) -> np.ndarray:
    """Posterior-predictive success probability ``alpha_i/(alpha_i+beta_i)``."""
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    return alpha / (alpha + beta)


def beta_bernoulli_log_prob(value, alpha, beta) -> np.ndarray:
    """Log marginal mass of a Bernoulli draw under a Beta prior.

    This is the Rao-Blackwellized ``observe`` weight of delayed
    sampling: the Beta stays symbolic and the observation is scored
    under the predictive ``Bernoulli(alpha/(alpha+beta))``.
    """
    return bernoulli_log_prob(value, beta_bernoulli_predictive(alpha, beta))


def beta_bernoulli_update(value, alpha, beta) -> Tuple[np.ndarray, np.ndarray]:
    """Conjugate posterior parameters after seeing a Bernoulli draw.

    ``value`` may be a scalar (one observation conditioning every
    particle) or a per-particle boolean array (realized indicator
    variables): successes increment ``alpha``, failures ``beta``.
    """
    hit = np.asarray(value, dtype=bool)
    alpha = np.asarray(alpha, dtype=float)
    beta = np.asarray(beta, dtype=float)
    return alpha + hit, beta + ~hit


# ----------------------------------------------------------------------
# shared-parameter kernels for scalar distribution objects
# ----------------------------------------------------------------------
def _gaussian_sample_n(d: Gaussian, n: int, rng) -> np.ndarray:
    return rng.normal(d.mu, math.sqrt(d.var), size=n)


def _gaussian_log_prob(d: Gaussian, values) -> np.ndarray:
    return gaussian_log_prob(values, d.mu, d.var)


def _bernoulli_sample_n(d: Bernoulli, n: int, rng) -> np.ndarray:
    return rng.random(n) < d.p


def _bernoulli_log_prob(d: Bernoulli, values) -> np.ndarray:
    return bernoulli_log_prob(values, d.p)


def _beta_sample_n(d: Beta, n: int, rng) -> np.ndarray:
    return rng.beta(d.alpha, d.beta, size=n)


def _beta_log_prob(d: Beta, values) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    log_norm = (
        math.lgamma(d.alpha + d.beta) - math.lgamma(d.alpha) - math.lgamma(d.beta)
    )
    inside = (values > 0.0) & (values < 1.0)
    safe = np.where(inside, values, 0.5)
    logp = (
        log_norm
        + (d.alpha - 1.0) * np.log(safe)
        + (d.beta - 1.0) * np.log1p(-safe)
    )
    return np.where(inside, logp, -np.inf)


def _categorical_sample_n(d: Categorical, n: int, rng) -> np.ndarray:
    return categorical_sample(np.broadcast_to(d.probs, (n, d.probs.size)), rng)


def _categorical_log_prob(d: Categorical, values) -> np.ndarray:
    k = np.asarray(values, dtype=int)
    inside = (k >= 0) & (k < d.probs.size)
    p = np.where(inside, d.probs[np.where(inside, k, 0)], 0.0)
    with np.errstate(divide="ignore"):
        return np.where(p > 0.0, np.log(np.maximum(p, 1e-300)), -np.inf)


def _mv_gaussian_sample_n(d: MvGaussian, n: int, rng) -> np.ndarray:
    return rng.multivariate_normal(d.mu, d.cov, size=n, method="svd")


def _mv_gaussian_log_prob(d: MvGaussian, values) -> np.ndarray:
    values = np.asarray(values, dtype=float).reshape(-1, d.dim)
    diff = values - d.mu
    sign, logdet = np.linalg.slogdet(d.cov)
    if sign <= 0:
        eigvals = np.linalg.eigvalsh(d.cov)
        pos = eigvals[eigvals > 1e-12]
        logdet = float(np.sum(np.log(pos)))
    maha = np.einsum("ni,ij,nj->n", diff, np.linalg.pinv(d.cov), diff)
    return -0.5 * (d.dim * _LOG_2PI + logdet + maha)


#: type -> (sample_n kernel, log_prob kernel)
BATCH_KERNELS: Dict[Type[Distribution], Tuple[Callable, Callable]] = {
    Gaussian: (_gaussian_sample_n, _gaussian_log_prob),
    Bernoulli: (_bernoulli_sample_n, _bernoulli_log_prob),
    Beta: (_beta_sample_n, _beta_log_prob),
    Categorical: (_categorical_sample_n, _categorical_log_prob),
    MvGaussian: (_mv_gaussian_sample_n, _mv_gaussian_log_prob),
}


def supports_batch(dist: Distribution) -> bool:
    """True when ``dist`` has dedicated array kernels (no loop fallback)."""
    return type(dist) in BATCH_KERNELS


def sample_n(dist: Distribution, n: int, rng: np.random.Generator) -> np.ndarray:
    """Draw ``n`` independent values from ``dist`` as one stacked array."""
    kernels = BATCH_KERNELS.get(type(dist))
    if kernels is not None:
        return kernels[0](dist, int(n), rng)
    return np.asarray([dist.sample(rng) for _ in range(int(n))])


def log_prob(dist: Distribution, values: Any) -> np.ndarray:
    """Score a stacked array of values under ``dist``, elementwise."""
    kernels = BATCH_KERNELS.get(type(dist))
    if kernels is not None:
        return kernels[1](dist, values)
    return np.asarray([dist.log_pdf(v) for v in values], dtype=float)
