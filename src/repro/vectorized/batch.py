"""Structure-of-arrays particle representation.

The scalar engines (``repro.inference.engine``) hold one Python object
per particle and advance them in an interpreter loop, so per-step cost
is dominated by interpreter overhead. The vectorized backend stores the
whole particle population *transposed*: each state variable is one
stacked NumPy array with the particle index as the leading axis, and
the importance weights are a single log-weight vector. One engine step
is then a handful of array operations whose cost scales with hardware
throughput, not Python bytecode count.

A batch state is a *pytree* of arrays — ``None``, an ``ndarray`` of
leading dimension ``n``, or a tuple/list/dict of batch states. The
helpers here (:func:`gather`, :func:`batch_state_words`) traverse that
shape, so vectorized models are free to keep whatever state structure
mirrors their scalar counterpart.

Opaque leaves can opt in through the **row protocol**: any object
exposing ``batch_gather(indices)``, ``batch_slice(start, stop)``,
``batch_concat(tail)``, ``batch_rows()``, and ``batch_words()`` is
treated as one structure-of-arrays leaf whose particle axis the
helpers delegate to. This is how the array-native delayed-sampling
state (:class:`~repro.vectorized.sds_graph.ChainState`) — a whole
graph of per-slot arrays, not a flat array — flows through the engine
plan, the resample gather, and the worker-resident shard operations
without special cases in the executors.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import InferenceError

__all__ = [
    "ParticleBatch",
    "gather",
    "batch_state_words",
    "slice_state",
    "concat_states",
    "state_rows",
]


def gather(state: Any, indices: np.ndarray) -> Any:
    """Index every array leaf of a batch state along the particle axis.

    This is the vectorized analogue of cloning selected particles during
    resampling: ``state[indices]`` materializes fresh arrays, so the
    surviving particles never alias each other's storage.
    """
    if state is None:
        return None
    if hasattr(state, "batch_gather"):
        return state.batch_gather(np.asarray(indices))
    if isinstance(state, np.ndarray):
        return state[indices]
    if isinstance(state, tuple):
        return tuple(gather(s, indices) for s in state)
    if isinstance(state, list):
        return [gather(s, indices) for s in state]
    if isinstance(state, dict):
        return {k: gather(v, indices) for k, v in state.items()}
    raise InferenceError(
        f"batch state leaves must be arrays (or None), got {type(state).__name__}"
    )


def slice_state(state: Any, start: int, stop: int) -> Any:
    """Slice every array leaf of a batch state along the particle axis.

    The sharding counterpart of :func:`gather`: a view of one contiguous
    particle range (shards never overlap, so views are safe to advance
    independently).
    """
    if state is None:
        return None
    if hasattr(state, "batch_slice"):
        return state.batch_slice(start, stop)
    if isinstance(state, np.ndarray):
        return state[start:stop]
    if isinstance(state, tuple):
        return tuple(slice_state(s, start, stop) for s in state)
    if isinstance(state, list):
        return [slice_state(s, start, stop) for s in state]
    if isinstance(state, dict):
        return {k: slice_state(v, start, stop) for k, v in state.items()}
    raise InferenceError(
        f"batch state leaves must be arrays (or None), got {type(state).__name__}"
    )


def concat_states(states: Any) -> Any:
    """Concatenate same-shaped batch states along the particle axis.

    The merge counterpart of :func:`slice_state`: per-shard outputs and
    states become one population-sized pytree again, in shard order.
    """
    states = list(states)
    if not states:
        raise InferenceError("cannot concatenate an empty state list")
    head = states[0]
    if head is None:
        return None
    if hasattr(head, "batch_concat"):
        return head.batch_concat(states[1:])
    if isinstance(head, np.ndarray) or np.isscalar(head):
        return np.concatenate([np.atleast_1d(np.asarray(s)) for s in states])
    if isinstance(head, tuple):
        return tuple(concat_states(parts) for parts in zip(*states))
    if isinstance(head, list):
        return [concat_states(parts) for parts in zip(*states)]
    if isinstance(head, dict):
        return {k: concat_states([s[k] for s in states]) for k in head}
    raise InferenceError(
        f"batch state leaves must be arrays (or None), got {type(head).__name__}"
    )


def state_rows(state: Any) -> int:
    """Leading-axis (particle) count of a batch state.

    The length of the first array leaf found; every leaf shares the
    particle axis, so any one of them answers for the whole pytree.
    """
    if hasattr(state, "batch_rows"):
        return int(state.batch_rows())
    if isinstance(state, np.ndarray):
        return int(state.shape[0])
    leaves: Any = ()
    if isinstance(state, (tuple, list)):
        leaves = state
    elif isinstance(state, dict):
        leaves = state.values()
    for leaf in leaves:
        try:
            return state_rows(leaf)
        except InferenceError:
            continue
    raise InferenceError("batch state has no array leaf to measure")


def batch_state_words(state: Any) -> int:
    """Abstract heap words of a batch state (cf. ``state_words``)."""
    if state is None:
        return 1
    if hasattr(state, "batch_words"):
        return int(state.batch_words())
    if isinstance(state, np.ndarray):
        return 1 + int(state.size)
    if isinstance(state, (tuple, list)):
        return 1 + sum(batch_state_words(s) for s in state)
    if isinstance(state, dict):
        return 1 + sum(batch_state_words(v) for v in state.values())
    return 2


@dataclass
class ParticleBatch:
    """The whole particle population as stacked arrays plus log-weights.

    ``state`` is a pytree of arrays with leading dimension ``n``;
    ``log_weights`` is the length-``n`` accumulated log-weight vector
    (the transposed counterpart of ``Particle.log_weight``).
    """

    state: Any
    log_weights: np.ndarray

    def __post_init__(self) -> None:
        self.log_weights = np.asarray(self.log_weights, dtype=float)
        if self.log_weights.ndim != 1 or self.log_weights.size == 0:
            raise InferenceError("log_weights must be a non-empty vector")

    @property
    def n(self) -> int:
        """Number of particles in the batch."""
        return int(self.log_weights.size)

    def select(self, indices: np.ndarray) -> "ParticleBatch":
        """Resample: keep the particles at ``indices``, reset weights."""
        indices = np.asarray(indices)
        return ParticleBatch(
            state=gather(self.state, indices),
            log_weights=np.zeros(indices.size),
        )

    def with_weights(self, log_weights: np.ndarray) -> "ParticleBatch":
        """Same states, new accumulated log-weight vector."""
        return ParticleBatch(state=self.state, log_weights=log_weights)

    def memory_words(self) -> int:
        """Abstract heap words held by the batch (state + weight vector)."""
        return batch_state_words(self.state) + 1 + self.n


# Register ParticleBatch with the shared-memory transport: shard
# payloads cross the pipe inside checkpoint pulls ("pull" replies) and
# worker reloads ("load" commands), and opening the batch up lets its
# state arrays and weight vector ride the ring as descriptors instead
# of pickled bytes. Both sides of the pipe import this module (workers
# unpickle the vectorized stepper), so the codec exists everywhere.
from repro.exec.shm import register_shm_leaf  # noqa: E402

register_shm_leaf(
    ParticleBatch,
    lambda batch: (batch.state, batch.log_weights),
    lambda parts: ParticleBatch(*parts),
)
