"""Structure-of-arrays posterior representations.

The scalar engines report an :class:`~repro.dists.Empirical` (PF) or a
:class:`~repro.dists.Mixture` of per-particle marginals (SDS). Building
those from a vectorized step would allocate ``n`` Python objects and
reintroduce the interpreter loop the backend exists to avoid, so the
vectorized engines report these array-backed equivalents instead: the
same :class:`~repro.dists.Distribution` interface, with moments and
scores computed by array reductions.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.dists import Beta, Dirichlet, Gamma, Gaussian, MvGaussian, Poisson
from repro.dists.base import Distribution
from repro.dists.mixture import zero_nan_weights
from repro.dists.mv_gaussian import batched_mv_log_pdf
from repro.errors import DistributionError

__all__ = [
    "ArrayEmpirical",
    "GaussianMixtureArray",
    "MvGaussianMixtureArray",
    "BetaMixtureArray",
    "GammaMixtureArray",
    "DirichletMixtureArray",
    "CountMixtureArray",
]

_LOG_2PI = math.log(2.0 * math.pi)


def _normalize_weights(weights, size: int) -> np.ndarray:
    if weights is None:
        return np.full(size, 1.0 / size)
    weights = np.asarray(weights, dtype=float)
    if weights.size != size:
        raise DistributionError("values and weights must have equal length")
    weights = zero_nan_weights(weights, stacklevel=4)
    if np.any(weights < 0):
        raise DistributionError("weights must be non-negative")
    total = weights.sum()
    if not total > 0:
        raise DistributionError("weights must not all be zero")
    return weights / total


class ArrayEmpirical(Distribution):
    """Weighted empirical distribution over a stacked value array.

    The vectorized counterpart of :class:`~repro.dists.Empirical`:
    ``values`` is one array whose leading axis indexes particles (scalar
    support gives a vector, vector support an ``(n, d)`` matrix).
    """

    __slots__ = ("values", "weights")

    def __init__(self, values, weights=None):
        # Copy before freezing: callers (the engines) pass arrays that
        # alias the live batch state, which must stay writeable.
        values = np.array(values)
        if values.ndim == 0 or values.shape[0] == 0:
            raise DistributionError("empirical distribution needs at least one value")
        self.values = values
        self.weights = _normalize_weights(weights, values.shape[0])
        self.values.setflags(write=False)
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> Any:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return self.values[idx]

    def log_pdf(self, value: Any) -> float:
        if self.values.ndim == 1:
            mass = float(self.weights[self.values == value].sum())
        else:
            hits = np.all(self.values == np.asarray(value), axis=tuple(range(1, self.values.ndim)))
            mass = float(self.weights[hits].sum())
        return math.log(mass) if mass > 0 else -math.inf

    def mean(self) -> Any:
        axes = (1,) * (self.values.ndim - 1)
        acc = np.sum(self.weights.reshape((-1,) + axes) * self.values, axis=0)
        return float(acc) if acc.ndim == 0 else acc

    def variance(self) -> Any:
        mean = self.mean()
        diff = self.values - mean
        axes = (1,) * (self.values.ndim - 1)
        acc = np.sum(self.weights.reshape((-1,) + axes) * diff * diff, axis=0)
        return float(acc) if acc.ndim == 0 else acc

    def cdf(self, x: float) -> float:
        """P(X <= x); used by :func:`repro.dists.stats.cdf`."""
        if self.values.ndim != 1:
            raise DistributionError("cdf needs scalar support values")
        return float(self.weights[self.values <= float(x)].sum())

    def memory_words(self) -> int:
        return 2 + int(self.values.size) + self.weights.size

    def __len__(self) -> int:
        return int(self.values.shape[0])

    def __repr__(self) -> str:
        return f"ArrayEmpirical(n={len(self)})"


class GaussianMixtureArray(Distribution):
    """Mixture of ``n`` Gaussians stored as mean/variance/weight vectors.

    The vectorized counterpart of the SDS output (a
    :class:`~repro.dists.Mixture` of per-particle Gaussian marginals):
    each particle contributes one component, and every query is an array
    reduction over the component vectors.
    """

    __slots__ = ("mus", "vars", "weights")

    def __init__(self, mus, variances, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        mus = np.array(mus, dtype=float).reshape(-1)
        variances = np.array(variances, dtype=float).reshape(-1)
        if mus.size == 0 or variances.size != mus.size:
            raise DistributionError("need matching non-empty mean/variance vectors")
        if np.any(variances <= 0):
            raise DistributionError("component variances must be > 0")
        self.mus = mus
        self.vars = variances
        self.weights = _normalize_weights(weights, mus.size)
        self.mus.setflags(write=False)
        self.vars.setflags(write=False)
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> float:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return rng.normal(self.mus[idx], math.sqrt(self.vars[idx]))

    def log_pdf(self, value: float) -> float:
        diff = float(value) - self.mus
        logs = -0.5 * (_LOG_2PI + np.log(self.vars) + diff * diff / self.vars)
        with np.errstate(divide="ignore"):
            terms = np.where(self.weights > 0, np.log(np.maximum(self.weights, 1e-300)), -np.inf) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def mean(self) -> float:
        return float(np.dot(self.weights, self.mus))

    def variance(self) -> float:
        # Law of total variance over the components.
        mean = self.mean()
        diff = self.mus - mean
        return float(np.dot(self.weights, self.vars + diff * diff))

    def cdf(self, x: float) -> float:
        """P(X <= x); used by :func:`repro.dists.stats.cdf`."""
        z = (float(x) - self.mus) / np.sqrt(2.0 * self.vars)
        # math.erf is scalar-only and NumPy has no erf; the loop runs
        # once per control-path query, not per inference step.
        phis = np.array([0.5 * (1.0 + math.erf(v)) for v in z])
        return float(np.dot(self.weights, phis))

    def component(self, i: int) -> Gaussian:
        """The ``i``-th component as a scalar Gaussian object."""
        return Gaussian(self.mus[i], self.vars[i])

    def memory_words(self) -> int:
        return 2 + 3 * self.mus.size

    def __len__(self) -> int:
        return int(self.mus.size)

    def __repr__(self) -> str:
        return f"GaussianMixtureArray(n={len(self)})"


class MvGaussianMixtureArray(Distribution):
    """Mixture of ``n`` multivariate Gaussians with a *shared* covariance.

    The vectorized counterpart of the SDS output on multivariate
    Gaussian chains (the robot tracker): every particle contributes one
    ``N(mean_i, cov)`` component. Covariances are shared because the
    Gaussian-chain arithmetic never feeds realized values into the
    covariance recursion — the same invariant the batched graph exploits
    — so the whole posterior is one ``(n, d)`` mean matrix plus one
    ``(d, d)`` matrix.
    """

    __slots__ = ("means", "cov", "weights")

    def __init__(self, means, cov, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        means = np.array(means, dtype=float)
        cov = np.array(cov, dtype=float)
        if means.ndim != 2 or means.shape[0] == 0:
            raise DistributionError("need a non-empty (n, d) mean matrix")
        if cov.shape != (means.shape[1], means.shape[1]):
            raise DistributionError(
                f"cov shape {cov.shape} does not match mean dim {means.shape[1]}"
            )
        self.means = means
        self.cov = cov
        self.weights = _normalize_weights(weights, means.shape[0])
        self.means.setflags(write=False)
        self.cov.setflags(write=False)
        self.weights.setflags(write=False)

    @property
    def dim(self) -> int:
        return int(self.means.shape[1])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return rng.multivariate_normal(self.means[idx], self.cov, method="svd")

    def log_pdf(self, value) -> float:
        logs = batched_mv_log_pdf(value, self.means, self.cov)
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights > 0,
                np.log(np.maximum(self.weights, 1e-300)),
                -np.inf,
            ) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def mean(self) -> np.ndarray:
        return self.weights @ self.means

    def variance(self) -> np.ndarray:
        # Law of total variance: shared within-component covariance plus
        # the between-component spread of the means.
        diff = self.means - self.mean()
        return self.cov + (self.weights[:, None] * diff).T @ diff

    def component(self, i: int) -> MvGaussian:
        """The ``i``-th component as a scalar MvGaussian object."""
        return MvGaussian(self.means[i], self.cov)

    def memory_words(self) -> int:
        return 2 + int(self.means.size) + int(self.cov.size) + self.weights.size

    def __len__(self) -> int:
        return int(self.means.shape[0])

    def __repr__(self) -> str:
        return f"MvGaussianMixtureArray(n={len(self)}, dim={self.dim})"


class BetaMixtureArray(Distribution):
    """Mixture of ``n`` Beta components stored as parameter vectors.

    The vectorized counterpart of the SDS output on Beta-Bernoulli
    models (a :class:`~repro.dists.Mixture` of per-particle Beta
    marginals): each particle contributes one ``Beta(alpha_i, beta_i)``
    component, and moments are array reductions over the parameter
    vectors.
    """

    __slots__ = ("alphas", "betas", "weights", "_log_norm")

    def __init__(self, alphas, betas, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        alphas = np.array(alphas, dtype=float).reshape(-1)
        betas = np.array(betas, dtype=float).reshape(-1)
        if alphas.size == 0 or betas.size != alphas.size:
            raise DistributionError("need matching non-empty alpha/beta vectors")
        if np.any(alphas <= 0) or np.any(betas <= 0):
            raise DistributionError("component parameters must be > 0")
        self.alphas = alphas
        self.betas = betas
        self.weights = _normalize_weights(weights, alphas.size)
        # NumPy has no lgamma ufunc; the Python-loop normalizer is paid
        # once here, not on every log_pdf query.
        lgamma = np.vectorize(math.lgamma, otypes=[float])
        self._log_norm = (
            lgamma(alphas + betas) - lgamma(alphas) - lgamma(betas)
        )
        self.alphas.setflags(write=False)
        self.betas.setflags(write=False)
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> float:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return float(rng.beta(self.alphas[idx], self.betas[idx]))

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if not 0.0 < value < 1.0:
            return -math.inf
        logs = (
            self._log_norm
            + (self.alphas - 1.0) * math.log(value)
            + (self.betas - 1.0) * math.log1p(-value)
        )
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights > 0,
                np.log(np.maximum(self.weights, 1e-300)),
                -np.inf,
            ) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def mean(self) -> float:
        return float(np.dot(self.weights, self.alphas / (self.alphas + self.betas)))

    def variance(self) -> float:
        # Law of total variance over the components.
        total = self.alphas + self.betas
        means = self.alphas / total
        component_vars = self.alphas * self.betas / (total * total * (total + 1.0))
        mean = float(np.dot(self.weights, means))
        diff = means - mean
        return float(np.dot(self.weights, component_vars + diff * diff))

    def component(self, i: int) -> Beta:
        """The ``i``-th component as a scalar Beta object."""
        return Beta(self.alphas[i], self.betas[i])

    def memory_words(self) -> int:
        return 2 + 3 * self.alphas.size

    def __len__(self) -> int:
        return int(self.alphas.size)

    def __repr__(self) -> str:
        return f"BetaMixtureArray(n={len(self)})"


class GammaMixtureArray(Distribution):
    """Mixture of ``n`` Gamma components stored as parameter vectors.

    The vectorized counterpart of the SDS output on Gamma-Poisson
    models (count-data streams): each particle contributes one
    ``Gamma(shape_i, rate_i)`` component, and moments are array
    reductions over the parameter vectors.
    """

    __slots__ = ("shapes", "rates", "weights", "_log_norm")

    def __init__(self, shapes, rates, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        shapes = np.array(shapes, dtype=float).reshape(-1)
        rates = np.array(rates, dtype=float).reshape(-1)
        if shapes.size == 0 or rates.size != shapes.size:
            raise DistributionError("need matching non-empty shape/rate vectors")
        if np.any(shapes <= 0) or np.any(rates <= 0):
            raise DistributionError("component parameters must be > 0")
        self.shapes = shapes
        self.rates = rates
        self.weights = _normalize_weights(weights, shapes.size)
        # NumPy has no lgamma ufunc; the Python-loop normalizer is paid
        # once here, not on every log_pdf query.
        lgamma = np.vectorize(math.lgamma, otypes=[float])
        self._log_norm = shapes * np.log(rates) - lgamma(shapes)
        self.shapes.setflags(write=False)
        self.rates.setflags(write=False)
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> float:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return float(rng.gamma(self.shapes[idx], 1.0 / self.rates[idx]))

    def log_pdf(self, value: float) -> float:
        value = float(value)
        if not value > 0.0:
            return -math.inf
        logs = (
            self._log_norm
            + (self.shapes - 1.0) * math.log(value)
            - self.rates * value
        )
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights > 0,
                np.log(np.maximum(self.weights, 1e-300)),
                -np.inf,
            ) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def mean(self) -> float:
        return float(np.dot(self.weights, self.shapes / self.rates))

    def variance(self) -> float:
        # Law of total variance over the components.
        means = self.shapes / self.rates
        component_vars = self.shapes / (self.rates * self.rates)
        mean = float(np.dot(self.weights, means))
        diff = means - mean
        return float(np.dot(self.weights, component_vars + diff * diff))

    def component(self, i: int) -> Gamma:
        """The ``i``-th component as a scalar Gamma object."""
        return Gamma(self.shapes[i], self.rates[i])

    def memory_words(self) -> int:
        return 2 + 3 * self.shapes.size

    def __len__(self) -> int:
        return int(self.shapes.size)

    def __repr__(self) -> str:
        return f"GammaMixtureArray(n={len(self)})"


class DirichletMixtureArray(Distribution):
    """Mixture of ``n`` Dirichlet components over a shared ``k``-simplex.

    The vectorized counterpart of the SDS output on
    Dirichlet-Categorical models (topic/proportion streams): each
    particle contributes one ``Dirichlet(alpha_i)`` component, stored
    as one ``(n, k)`` concentration matrix.
    """

    __slots__ = ("alphas", "weights")

    def __init__(self, alphas, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        alphas = np.array(alphas, dtype=float)
        if alphas.ndim != 2 or alphas.shape[0] == 0 or alphas.shape[1] < 2:
            raise DistributionError("need a non-empty (n, k>=2) alpha matrix")
        if np.any(alphas <= 0):
            raise DistributionError("concentration parameters must be > 0")
        self.alphas = alphas
        self.weights = _normalize_weights(weights, alphas.shape[0])
        self.alphas.setflags(write=False)
        self.weights.setflags(write=False)

    @property
    def dim(self) -> int:
        return int(self.alphas.shape[1])

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        return rng.dirichlet(self.alphas[idx])

    def log_pdf(self, value) -> float:
        from repro.vectorized.kernels import dirichlet_log_prob

        value = np.asarray(value, dtype=float)
        logs = dirichlet_log_prob(
            np.broadcast_to(value, self.alphas.shape), self.alphas
        )
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights > 0,
                np.log(np.maximum(self.weights, 1e-300)),
                -np.inf,
            ) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def mean(self) -> np.ndarray:
        means = self.alphas / self.alphas.sum(axis=1, keepdims=True)
        return self.weights @ means

    def variance(self) -> np.ndarray:
        # Law of total variance, per coordinate.
        totals = self.alphas.sum(axis=1, keepdims=True)
        means = self.alphas / totals
        component_vars = means * (1.0 - means) / (totals + 1.0)
        mean = self.weights @ means
        diff = means - mean
        return self.weights @ (component_vars + diff * diff)

    def component(self, i: int) -> Dirichlet:
        """The ``i``-th component as a scalar Dirichlet object."""
        return Dirichlet(self.alphas[i])

    def memory_words(self) -> int:
        return 2 + int(self.alphas.size) + self.weights.size

    def __len__(self) -> int:
        return int(self.alphas.shape[0])

    def __repr__(self) -> str:
        return f"DirichletMixtureArray(n={len(self)}, dim={self.dim})"


class CountMixtureArray(Distribution):
    """Mixture of ``n`` count components: Poisson or negative binomial.

    The vectorized counterpart of the SDS output when a Poisson slot is
    itself the reported variable. With ``rates is None`` every component
    is ``Poisson(p0_i)``; otherwise component ``i`` is the Gamma-Poisson
    marginal ``NB(r=p0_i, p=rate_i/(rate_i+1))`` — the same
    parameterization as the batched "poisson" slot family.
    """

    __slots__ = ("p0", "rates", "weights")

    def __init__(self, p0, rates=None, weights=None):
        # Copies, not views: the engines pass the live posterior arrays.
        p0 = np.array(p0, dtype=float).reshape(-1)
        if p0.size == 0:
            raise DistributionError("need a non-empty parameter vector")
        if np.any(p0 <= 0):
            raise DistributionError("component parameters must be > 0")
        if rates is not None:
            rates = np.array(rates, dtype=float).reshape(-1)
            if rates.size != p0.size:
                raise DistributionError("need matching shape/rate vectors")
            if np.any(rates <= 0):
                raise DistributionError("component rates must be > 0")
            rates.setflags(write=False)
        self.p0 = p0
        self.rates = rates
        self.weights = _normalize_weights(weights, p0.size)
        self.p0.setflags(write=False)
        self.weights.setflags(write=False)

    def sample(self, rng: np.random.Generator) -> int:
        idx = int(rng.choice(self.weights.size, p=self.weights))
        lam = self.p0[idx]
        if self.rates is not None:
            lam = rng.gamma(self.p0[idx], 1.0 / self.rates[idx])
        return int(rng.poisson(lam))

    def _component_logs(self, value) -> np.ndarray:
        from repro.vectorized.kernels import (
            neg_binomial_log_prob,
            poisson_log_prob,
        )

        if self.rates is None:
            return poisson_log_prob(value, self.p0)
        return neg_binomial_log_prob(value, self.p0, self.rates)

    def log_pdf(self, value) -> float:
        logs = self._component_logs(float(value))
        with np.errstate(divide="ignore"):
            terms = np.where(
                self.weights > 0,
                np.log(np.maximum(self.weights, 1e-300)),
                -np.inf,
            ) + logs
        top = terms.max()
        if np.isneginf(top):
            return -math.inf
        return float(top + np.log(np.sum(np.exp(terms - top))))

    def _component_means(self) -> np.ndarray:
        if self.rates is None:
            return self.p0
        return self.p0 / self.rates

    def mean(self) -> float:
        return float(np.dot(self.weights, self._component_means()))

    def variance(self) -> float:
        # Law of total variance over the components.
        means = self._component_means()
        if self.rates is None:
            component_vars = self.p0
        else:
            component_vars = means * (self.rates + 1.0) / self.rates
        mean = float(np.dot(self.weights, means))
        diff = means - mean
        return float(np.dot(self.weights, component_vars + diff * diff))

    def component(self, i: int) -> Poisson:
        """The ``i``-th component as a scalar distribution object."""
        if self.rates is None:
            return Poisson(self.p0[i])
        from repro.delayed.conjugacy import _NegativeBinomialMarginal

        return _NegativeBinomialMarginal(self.p0[i], self.rates[i])

    def memory_words(self) -> int:
        words = 2 + 2 * self.p0.size
        return words + (0 if self.rates is None else int(self.rates.size))

    def __len__(self) -> int:
        return int(self.p0.size)

    def __repr__(self) -> str:
        kind = "poisson" if self.rates is None else "neg-binomial"
        return f"CountMixtureArray(n={len(self)}, kind={kind})"

