"""Vectorized execution backend: structure-of-arrays particle inference.

The scalar engines of :mod:`repro.inference` are the semantic baseline —
one Python object per particle, stepped in an interpreter loop. This
package is the high-throughput substrate: the particle population lives
in stacked NumPy arrays (:class:`ParticleBatch`), distributions sample
and score whole batches at once (:mod:`repro.vectorized.kernels`), and
the engines advance every particle in a constant number of array
operations per synchronous instant.

Select it through the public API::

    from repro import infer
    engine = infer(model, n_particles=1000, method="pf", backend="vectorized")

which falls back to the scalar engines when the model has no vectorized
equivalent (see :func:`vectorize_model`).
"""

from repro.vectorized.batch import (
    ParticleBatch,
    batch_state_words,
    concat_states,
    gather,
    slice_state,
)
from repro.vectorized.dists import (
    ArrayEmpirical,
    BetaMixtureArray,
    CountMixtureArray,
    DirichletMixtureArray,
    GammaMixtureArray,
    GaussianMixtureArray,
    MvGaussianMixtureArray,
)
from repro.vectorized.engine import (
    ScalarFallbackState,
    VectorizedBetaBernoulliSDS,
    VectorizedEngine,
    VectorizedGaussianChainSDS,
    VectorizedKalmanSDS,
    VectorizedOutlierSDS,
    VectorizedParticleFilter,
)
from repro.vectorized.sds_graph import (
    FAMILY_KERNELS,
    BatchedDelayedCtx,
    BatchedDSGraph,
    BatchedGaussianChainGraph,
    BatchedNode,
    BetaBernoulliEdge,
    ChainOuts,
    ChainState,
    ChainStructureError,
    DirichletCategoricalEdge,
    GammaPoissonEdge,
    SlotFamily,
    register_slot_family,
)
from repro.vectorized.kernels import (
    BATCH_KERNELS,
    beta_bernoulli_log_prob,
    beta_bernoulli_predictive,
    beta_bernoulli_update,
    log_prob,
    sample_n,
    supports_batch,
)
from repro.vectorized.models import (
    BDS_ENGINES,
    CONJUGATE_GAUSSIAN_CHAINS,
    SDS_ENGINES,
    VECTORIZED_MODELS,
    GraphOutlierModel,
    VectorizedCoin,
    VectorizedKalman,
    VectorizedModel,
    VectorizedOutlier,
    register_bds_engine,
    register_conjugate_gaussian_chain,
    register_ds_graph_model,
    register_gaussian_chain_model,
    register_sds_engine,
    register_vectorizer,
    vectorize_model,
)

__all__ = [
    "ParticleBatch",
    "gather",
    "slice_state",
    "concat_states",
    "batch_state_words",
    "ArrayEmpirical",
    "GaussianMixtureArray",
    "MvGaussianMixtureArray",
    "BetaMixtureArray",
    "GammaMixtureArray",
    "DirichletMixtureArray",
    "CountMixtureArray",
    "VectorizedEngine",
    "VectorizedParticleFilter",
    "VectorizedKalmanSDS",
    "VectorizedGaussianChainSDS",
    "VectorizedBetaBernoulliSDS",
    "VectorizedOutlierSDS",
    "ScalarFallbackState",
    "BatchedDSGraph",
    "BatchedGaussianChainGraph",
    "BatchedDelayedCtx",
    "BatchedNode",
    "BetaBernoulliEdge",
    "GammaPoissonEdge",
    "DirichletCategoricalEdge",
    "SlotFamily",
    "FAMILY_KERNELS",
    "register_slot_family",
    "ChainOuts",
    "ChainState",
    "ChainStructureError",
    "BATCH_KERNELS",
    "supports_batch",
    "sample_n",
    "log_prob",
    "beta_bernoulli_predictive",
    "beta_bernoulli_log_prob",
    "beta_bernoulli_update",
    "VectorizedModel",
    "VectorizedKalman",
    "VectorizedCoin",
    "VectorizedOutlier",
    "GraphOutlierModel",
    "VECTORIZED_MODELS",
    "CONJUGATE_GAUSSIAN_CHAINS",
    "SDS_ENGINES",
    "BDS_ENGINES",
    "register_vectorizer",
    "register_conjugate_gaussian_chain",
    "register_sds_engine",
    "register_bds_engine",
    "register_ds_graph_model",
    "register_gaussian_chain_model",
    "vectorize_model",
]


def __getattr__(name: str):
    if name == "ChainFragmentError":
        # Deprecated alias; the sds_graph module-level shim emits the
        # DeprecationWarning and returns ChainStructureError.
        from repro.vectorized import sds_graph

        return getattr(sds_graph, "ChainFragmentError")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
