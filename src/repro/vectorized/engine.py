"""Vectorized inference engines.

These engines implement the same streaming contract as the scalar
engines of :mod:`repro.inference.engine` — ``init`` / ``step`` over an
externalized state, output a posterior :class:`~repro.dists.Distribution`
per synchronous instant — but their state is one
:class:`~repro.vectorized.batch.ParticleBatch` instead of a list of
:class:`~repro.inference.particles.Particle` objects, and one ``step``
is a constant number of array operations regardless of the particle
count:

* :class:`VectorizedParticleFilter` — the bootstrap particle filter of
  Section 5.1 over a :class:`~repro.vectorized.models.VectorizedModel`;
  statistically equivalent to :class:`~repro.inference.engine.ParticleFilter`
  (same laws, different draw order).
* :class:`VectorizedKalmanSDS` — the streaming-delayed-sampling
  semantics (Section 5.3) for the paper's conjugate Gaussian chains
  (Kalman / Fig. 2 HMM): every particle's marginal is maintained as a
  closed-form mean/variance pair, so the engine performs batched Kalman
  predict/update arithmetic with Rao-Blackwellized weights and no
  per-particle graph objects.
* :class:`VectorizedBetaBernoulliSDS` — the same idea for the Coin
  model's Beta-Bernoulli chain: per-particle ``(alpha, beta)`` vectors,
  conjugate updates, exact predictive weights.
* :class:`VectorizedOutlierSDS` — the Rao-Blackwellized Outlier model:
  a conjugate Gaussian position chain plus a Beta-Bernoulli outlier
  indicator whose forced realization becomes a masked batched update.

All subclass :class:`~repro.inference.engine.InferenceEngine`, reusing
its configuration surface (``resampler``, ``resample_threshold``,
``clone_on_resample``, ``executor``, ``n_shards``, diagnostics) —
``clone_on_resample`` is accepted for interface compatibility but has
no observable effect here, because the array gather of resampling
always materializes fresh storage for every survivor. Like the scalar
engines, one step runs through the :mod:`repro.exec` plan: in sharded
mode the batch is partitioned into contiguous
:class:`~repro.vectorized.batch.ParticleBatch` slices, one per shard,
each advanced with its own RNG substream.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional, Tuple, Union

import numpy as np

from repro.dists import Bernoulli, Categorical, Distribution
from repro.errors import InferenceError
from repro.exec.population import (
    ExchangePlan,
    ResidentPopulation,
    ShardResult,
    ShardedPopulation,
    shard_sizes,
    spawn_shard_rngs,
)
from repro.exec.shm import materialize
from repro.inference.engine import InferenceEngine
from repro.inference.resampling import normalize_log_weights
from repro.obs.registry import count_event
from repro.obs.spans import TELEMETRY
from repro.runtime.node import ProbNode
from repro.vectorized.batch import (
    ParticleBatch,
    concat_states,
    gather,
    slice_state,
    state_rows,
)
from repro.vectorized.dists import (
    ArrayEmpirical,
    BetaMixtureArray,
    CountMixtureArray,
    DirichletMixtureArray,
    GammaMixtureArray,
    GaussianMixtureArray,
    MvGaussianMixtureArray,
)
from repro.vectorized.kernels import (
    bernoulli_sample,
    beta_bernoulli_log_prob,
    beta_bernoulli_predictive,
    beta_bernoulli_update,
    gaussian_log_prob,
)
from repro.vectorized.models import VectorizedModel, vectorize_model
from repro.vectorized.sds_graph import (
    BatchedDelayedCtx,
    BatchedDSGraph,
    ChainOuts,
    ChainState,
    ChainStructureError,
    _map_leaves,
    delta_rows,
    lift_output,
    wrap_batch_state,
)

__all__ = [
    "VectorizedEngine",
    "VectorizedParticleFilter",
    "VectorizedKalmanSDS",
    "VectorizedGaussianChainSDS",
    "VectorizedBetaBernoulliSDS",
    "VectorizedOutlierSDS",
    "ScalarFallbackState",
    "make_vectorized_engine",
]


def _merge(pieces: List[Any]) -> Any:
    """Concatenate per-shard array pytrees (no copy for one shard)."""
    if len(pieces) == 1:
        return pieces[0]
    return concat_states(pieces)


class VectorizedEngine(InferenceEngine):
    """Base class for engines whose state is a :class:`ParticleBatch`.

    In sharded mode the engine state is a
    :class:`~repro.exec.population.ShardedPopulation` whose payloads are
    contiguous :class:`ParticleBatch` slices; the executor plan (map
    shards, merge weights, resample at the barrier) mirrors the scalar
    engines exactly, so ``executor=`` behaves identically on both
    substrates.
    """

    def init(self) -> Union[ParticleBatch, ShardedPopulation, ResidentPopulation]:
        if not self.sharded:
            return ParticleBatch(
                state=self._init_batch_state(self.n_particles, self.rng),
                log_weights=np.zeros(self.n_particles),
            )
        rngs = spawn_shard_rngs(self.n_shards, seed=self._seed, rng=self.rng)
        sizes = shard_sizes(self.n_particles, self.n_shards)
        chunks = [
            ParticleBatch(self._init_batch_state(size, rng), np.zeros(size))
            for size, rng in zip(sizes, rngs)
        ]
        population = ShardedPopulation.build(chunks, rngs)
        if self.executor.resident:
            return ResidentPopulation.create(self.executor, self, population.shards)
        return population

    def step(
        self, state: Union[ParticleBatch, ShardedPopulation], inp: Any
    ) -> Tuple[Distribution, Union[ParticleBatch, ShardedPopulation]]:
        if isinstance(state, ResidentPopulation):
            return self._step_resident(state, inp)
        sharded = isinstance(state, ShardedPopulation)
        if sharded:
            population = state
        else:
            population = ShardedPopulation.build([state], [self.rng])
        timer = TELEMETRY.step_timer()
        # _map_population carries the processes->serial degradation rung
        # (BrokenProcessPool) exactly as in the scalar engine.
        results, population = self._map_population(population, inp)
        timer.mark("model_eval")
        outs = _merge([r.outs for r in results])
        step_logw = np.concatenate([r.step_log_weights for r in results])
        prev_logw = np.concatenate([r.prev_log_weights for r in results])
        log_weights = prev_logw + step_logw
        weights = normalize_log_weights(log_weights)
        self._record_stats(prev_logw, step_logw, weights)
        output = self._output_distribution(outs, weights)
        timer.mark("weight_merge")

        sizes = [r.payload.n for r in results]
        if self.resample and self._should_resample(weights):
            # Barrier: global ancestor indices from the engine-level
            # generator, then re-scatter contiguous slices of the
            # survivors into the fixed shard partition.
            indices = np.asarray(
                self.resampler(weights, self.n_particles, self.rng)
            )
            merged = _merge([r.payload.state for r in results])
            gathered = gather(merged, indices)
            chunks, start = [], 0
            for size in sizes:
                chunks.append(
                    ParticleBatch(
                        slice_state(gathered, start, start + size), np.zeros(size)
                    )
                )
                start += size
            timer.mark("resample")
        else:
            chunks, start = [], 0
            for result, size in zip(results, sizes):
                chunks.append(
                    ParticleBatch(
                        result.payload.state, log_weights[start : start + size]
                    )
                )
                start += size
            timer.mark("weight_commit")
        timer.total("step")
        if not sharded:
            return output, chunks[0]
        return output, population.with_payloads(chunks)

    def step_shard(
        self, batch: ParticleBatch, rng: np.random.Generator, inp: Any
    ) -> ShardResult:
        """Map phase for one shard: advance its batch slice under ``rng``."""
        outs, new_state, step_logw = self._step_batch(batch.state, inp, batch.n, rng)
        return ShardResult(
            outs=outs,
            payload=ParticleBatch(new_state, batch.log_weights),
            step_log_weights=np.asarray(step_logw, dtype=float),
            prev_log_weights=batch.log_weights,
            rng=rng,
        )

    # ------------------------------------------------------------------
    # worker-resident execution (PersistentProcessExecutor)
    # ------------------------------------------------------------------
    def _merge_shard_outs(self, chunks: List[Any]) -> Any:
        # Multi-shard merges concatenate (fresh arrays); a single chunk
        # passes through _merge untouched, so zero-copy reply views must
        # be copied out here before they escape into the output
        # distribution — the ring region is reused next message.
        if len(chunks) == 1:
            return materialize(chunks[0])
        return _merge(chunks)

    def shard_export(self, batch: ParticleBatch, indices: Any) -> Any:
        """Worker-side: the state rows another shard needs at the barrier."""
        return gather(batch.state, np.asarray(indices, dtype=int))

    def shard_assemble(self, batch: ParticleBatch, plan: Any, imports: Any) -> ParticleBatch:
        """Worker-side: rebuild one shard slice from the exchange plan.

        Local survivors and imported row blocks are stacked into one
        combined state, then the plan becomes a single :func:`gather` —
        selecting exactly the rows the serial re-scatter would, so the
        fresh arrays are bit-identical to the materialized path.
        """
        sources = sorted(imports)
        offsets, total = {}, batch.n
        for source in sources:
            offsets[source] = total
            total += state_rows(imports[source])
        if sources:
            combined = concat_states([batch.state] + [imports[s] for s in sources])
        else:
            combined = batch.state
        if isinstance(plan, ExchangePlan):
            # Array-native plan: the slot selection is pure index
            # arithmetic, no per-slot Python loop.
            indices = np.where(plan.kind == ExchangePlan.LOCAL, plan.a, 0)
            for source in sources:
                mask = (plan.kind == ExchangePlan.IMPORT) & (plan.a == source)
                indices[mask] = offsets[source] + plan.b[mask]
        else:
            indices = np.fromiter(
                (
                    entry[1] if entry[0] == "local" else offsets[entry[1]] + entry[2]
                    for entry in plan
                ),
                dtype=int,
                count=len(plan),
            )
        return ParticleBatch(gather(combined, indices), np.zeros(len(plan)))

    def shard_commit_weights(
        self, batch: ParticleBatch, log_weights: np.ndarray
    ) -> ParticleBatch:
        """Worker-side: fold the step's log-weights into the batch."""
        return ParticleBatch(batch.state, np.asarray(log_weights, dtype=float))

    def memory_words(self, state: Union[ParticleBatch, ShardedPopulation]) -> int:
        if isinstance(state, ResidentPopulation):
            state = state.materialize()
        if isinstance(state, ShardedPopulation):
            return sum(batch.memory_words() for batch in state.payloads())
        return state.memory_words()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        raise NotImplementedError

    def _step_batch(self, state: Any, inp: Any, n: int, rng: np.random.Generator):
        raise NotImplementedError


class VectorizedParticleFilter(VectorizedEngine):
    """Bootstrap particle filter advancing all particles per array step.

    ``model`` may be a :class:`VectorizedModel` or a scalar
    :class:`~repro.runtime.node.ProbNode` with a registered vectorized
    equivalent (see :func:`~repro.vectorized.models.vectorize_model`);
    anything else raises, and ``infer(..., backend=...)`` handles the
    fallback to the scalar engine.
    """

    def __init__(self, model: Any, **kwargs):
        batched = vectorize_model(model)
        if batched is None:
            raise InferenceError(
                f"model {type(model).__name__} has no vectorized equivalent; "
                "use the scalar ParticleFilter or register one with "
                "repro.vectorized.register_vectorizer"
            )
        super().__init__(model if isinstance(model, ProbNode) else batched, **kwargs)
        self.batched_model = batched

    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        return self.batched_model.init_batch(n, rng)

    def _step_batch(self, state: Any, inp: Any, n: int, rng: np.random.Generator):
        return self.batched_model.step_batch(state, inp, n, rng)

    def _output_distribution(self, outs, weights) -> Distribution:
        return ArrayEmpirical(outs, weights)


class VectorizedKalmanSDS(VectorizedEngine):
    """Rao-Blackwellized SDS for the conjugate Gaussian chain, batched.

    Under SDS the Kalman/HMM models never sample: each particle's
    marginal over the position is the exact filtering posterior, and the
    particle weight is the marginal likelihood of the observation
    (Section 5.3). This engine stores those marginals as stacked
    ``(mean, variance)`` vectors and performs the predict / update /
    weight computations as whole-population array arithmetic — the SDS
    semantics with neither graph nodes nor per-particle clones.

    ``model`` must be a conjugate Gaussian chain: an object exposing
    ``prior_mean`` / ``prior_var`` / ``motion_var`` / ``obs_var`` whose
    transition is ``x_t ~ N(x_{t-1}, motion_var)`` observed through
    ``y_t ~ N(x_t, obs_var)`` (``KalmanModel`` and ``HmmModel``).
    """

    _PARAMS = ("prior_mean", "prior_var", "motion_var", "obs_var")

    def __init__(self, model: Any, **kwargs):
        if not all(hasattr(model, p) for p in self._PARAMS):
            raise InferenceError(
                f"model {type(model).__name__} is not a conjugate Gaussian "
                "chain; VectorizedKalmanSDS needs "
                "prior_mean/prior_var/motion_var/obs_var"
            )
        super().__init__(model, **kwargs)

    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        return None  # (posterior means, posterior variances) after step 1

    def _step_batch(self, state: Any, yobs: Any, n: int, rng: np.random.Generator):
        if state is None:
            pred_mean = np.full(n, float(self.model.prior_mean))
            pred_var = np.full(n, float(self.model.prior_var))
        else:
            post_mean, post_var = state
            pred_mean = post_mean
            pred_var = post_var + self.model.motion_var
        yobs = float(yobs)
        # Rao-Blackwellized weight: the observation's marginal likelihood
        # under the predictive N(pred_mean, pred_var + obs_var).
        step_logw = gaussian_log_prob(yobs, pred_mean, pred_var + self.model.obs_var)
        gain = pred_var / (pred_var + self.model.obs_var)
        post_mean = pred_mean + gain * (yobs - pred_mean)
        post_var = (1.0 - gain) * pred_var
        return (post_mean, post_var), (post_mean, post_var), step_logw

    def _output_distribution(self, outs, weights) -> Distribution:
        post_mean, post_var = outs
        return GaussianMixtureArray(post_mean, post_var, weights)


class ScalarFallbackState:
    """Engine state after migration to a scalar delayed-sampling engine.

    Produced by :class:`VectorizedGaussianChainSDS` when the model
    leaves the batched fragment mid-stream: wraps the scalar engine's
    particle list so the engine's ``step`` knows to delegate. Opaque to
    callers, like every other engine state.
    """

    __slots__ = ("particles",)

    def __init__(self, particles: Any):
        self.particles = particles

    def __repr__(self) -> str:
        return f"ScalarFallbackState(n={len(self.particles)})"


class VectorizedGaussianChainSDS(VectorizedEngine):
    """Array-native delayed sampling over the generic batched DS graph.

    The tentpole of the vectorized subsystem: instead of one
    pointer-based delayed-sampling graph per particle, the engine runs
    the *scalar model code once per step* against a
    :class:`~repro.vectorized.sds_graph.BatchedDSGraph` holding every
    particle's delayed-sampling state as structure-of-arrays, so graft
    / marginalize / condition / realize are whole-population conjugacy
    kernels. Works for any model inside the batched fragment — scalar
    Kalman/HMM chains, multivariate (robot-tracker) chains, scalar
    projections of vector states, Beta-Bernoulli, Gamma-Poisson, and
    Dirichlet-Categorical slots, and tree-shaped combinations of these
    (the Outlier model's Beta→Bernoulli branch beside its Gaussian
    position chain) — as admitted by the structure detector
    (:func:`repro.delayed.detect.probe_ds_structure`) and the
    registries in :mod:`repro.vectorized.models`.

    ``mode`` selects the paper's two streaming delayed samplers:

    * ``"sds"`` (Section 5.3) — the graph persists across steps; the
      step output is the exact per-particle marginal
      (:class:`GaussianMixtureArray` / :class:`MvGaussianMixtureArray`
      / :class:`BetaMixtureArray` / :class:`GammaMixtureArray` /
      :class:`CountMixtureArray` / :class:`DirichletMixtureArray`).
    * ``"bds"`` (Section 5.2) — a fresh graph per step, every symbolic
      value force-realized at the end of the instant with one batched
      posterior draw; between steps the state is plain value arrays.

    Randomness is consumed in the same particle-major order as the
    scalar engines, so a ``bds`` run at a fixed seed reproduces the
    scalar ``bds`` draws on pure chains; all kernels are row-stable, so
    every executor and worker count reproduces the serial posterior bit
    for bit.

    **Mid-stream fallback (last resort).** A model that merely breaks
    conjugacy after it started (a transition that turns non-affine at
    step k, a Bernoulli of a Gaussian, …) does NOT leave the graph: the
    batched context realizes only the slots the offending expression
    references — one batched posterior draw each, counted in
    ``repro_slot_realizations_total{family}`` — and continues with
    every other slot symbolic. Scalar migration is reserved for steps
    the graph cannot express at all (an unsupported family, an unknown
    operator — the bounded ``reason`` tags on
    :class:`ChainStructureError`). Each SDS step runs against a cheap
    structural snapshot of the graph — mutations land on the snapshot,
    so a :class:`ChainStructureError` mid-step leaves the pre-step
    state intact — and ``step`` catches the error, realizes every
    symbolic state leaf with one batched posterior draw per variable,
    migrates the population to the corresponding scalar delayed sampler
    (one particle per row, weights preserved, serial execution), emits
    a one-time :class:`RuntimeWarning`, counts one
    ``repro_scalar_fallback_total{model,mode,reason}``, and finishes
    the stream there. Worker-resident populations
    (``processes-persistent:N``) do not support mid-stream migration —
    their step failures surface as executor errors — but every
    materialized executor (serial, threads, processes) does.
    """

    def __init__(self, model: Any, mode: str = "sds", **kwargs):
        if mode not in ("sds", "bds"):
            raise InferenceError(
                f"chain-SDS mode must be 'sds' or 'bds', got {mode!r}"
            )
        super().__init__(model, **kwargs)
        self.mode = mode
        #: scalar engine driving the population after fragment fallback.
        self._scalar_engine = None

    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        return None

    def _step_batch(self, state: Any, inp: Any, n: int, rng: np.random.Generator):
        if state is None:
            graph = BatchedDSGraph(n)
            model_state = self.model.init()
        elif state.graph is None:
            # BDS: between steps the state is concrete value arrays;
            # wrap them so the model's lifted constructors stay symbolic.
            graph = BatchedDSGraph(n)
            model_state = wrap_batch_state(state.model_state, n)
        else:
            # SDS: run the step against a structural snapshot (array
            # views, fresh slot bookkeeping) so a mid-step fragment
            # error leaves the caller's pre-step state untouched — the
            # failure-atomicity the scalar-fallback migration needs.
            snapshot = state.batch_slice(0, state.n)
            graph = snapshot.graph
            model_state = snapshot.model_state
        graph.rng = rng
        ctx = BatchedDelayedCtx(graph)
        out, new_model_state = self.model.step(model_state, inp, ctx)
        if self.mode == "bds":
            # End of the instant: delay expires, every symbolic term is
            # realized (one batched draw per forced variable) and the
            # step's graph is dropped.
            outs = ChainOuts("delta", delta_rows(ctx.value(out), n))
            new_state = ChainState(None, ctx.value(new_model_state), n)
        else:
            outs = lift_output(graph, out, n)
            new_state = ChainState(graph, new_model_state, n)
            graph.sweep(new_state.slot_roots())
        step_logw = np.ascontiguousarray(
            np.broadcast_to(np.asarray(ctx.log_weight, dtype=float), (n,))
        )
        return outs, new_state, step_logw

    def _output_distribution(self, outs: ChainOuts, weights) -> Distribution:
        if outs.kind == "gaussian":
            variances = np.broadcast_to(
                np.asarray(outs.var, dtype=float), outs.mean.shape
            )
            return GaussianMixtureArray(outs.mean, variances, weights)
        if outs.kind == "mv_gaussian":
            return MvGaussianMixtureArray(outs.mean, outs.var, weights)
        if outs.kind == "beta":
            return BetaMixtureArray(outs.mean, outs.var, weights)
        if outs.kind == "bernoulli":
            # A weighted mixture of Bernoullis is itself a Bernoulli.
            return Bernoulli(float(np.dot(weights, outs.mean)))
        if outs.kind == "gamma":
            return GammaMixtureArray(outs.mean, outs.var, weights)
        if outs.kind == "poisson":
            return CountMixtureArray(outs.mean, outs.var, weights)
        if outs.kind == "dirichlet":
            return DirichletMixtureArray(outs.mean, weights)
        if outs.kind == "categorical":
            # A weighted mixture of Categoricals is itself Categorical.
            return Categorical(np.asarray(weights, dtype=float) @ outs.mean)
        return ArrayEmpirical(outs.mean, weights)

    # ------------------------------------------------------------------
    # mid-stream fallback to the scalar delayed samplers
    # ------------------------------------------------------------------
    def step(self, state: Any, inp: Any) -> Tuple[Distribution, Any]:
        if isinstance(state, ScalarFallbackState):
            dist, particles = self._scalar_engine.step(state.particles, inp)
            self.last_stats = self._scalar_engine.last_stats
            return dist, ScalarFallbackState(particles)
        try:
            return super().step(state, inp)
        except ChainStructureError as exc:
            particles = self._migrate_to_scalar(state, exc)
            # Replay the failed step on the migrated population.
            dist, particles = self._scalar_engine.step(particles, inp)
            self.last_stats = self._scalar_engine.last_stats
            return dist, ScalarFallbackState(particles)

    def memory_words(self, state: Any) -> int:
        if isinstance(state, ScalarFallbackState):
            return self._scalar_engine.memory_words(state.particles)
        return super().memory_words(state)

    def _build_scalar_engine(self):
        # Imported lazily: repro.inference.engine imports nothing from
        # this package, but keeping the dependency one-way at module
        # scope mirrors the rest of the backend.
        from repro.inference.engine import (
            BoundedDelayedSampler,
            StreamingDelayedSampler,
        )

        cls = StreamingDelayedSampler if self.mode == "sds" else BoundedDelayedSampler
        engine = cls(self.model, n_particles=self.n_particles, rng=self.rng)
        engine.resampler = self.resampler
        engine.resample_threshold = self.resample_threshold
        engine.clone_on_resample = self.clone_on_resample
        # Share the diagnostics log so one infer() call yields one
        # uninterrupted StepStats stream across the migration.
        engine.diagnostics = self.diagnostics
        return engine

    def _collect_population(self, state: Any):
        """Merge any materialized engine state into one (ChainState, logw)."""
        if isinstance(state, ResidentPopulation):  # pragma: no cover - see step()
            population = state.materialize()
            state.release()
            state = population
        if isinstance(state, ShardedPopulation):
            payloads = state.payloads()
            chain_states = [batch.state for batch in payloads]
            log_weights = np.concatenate([batch.log_weights for batch in payloads])
            if chain_states[0] is None:
                return None, log_weights
            return chain_states[0].batch_concat(chain_states[1:]), log_weights
        return state.state, state.log_weights

    def _migrate_to_scalar(self, state: Any, exc: ChainStructureError):
        """Move the whole population onto the scalar delayed sampler.

        Symbolic state leaves are realized with one batched posterior
        draw per variable (exactly the BDS end-of-step rule, so the
        migration is an unbiased sample of the current posterior), then
        each particle receives its row of the realized arrays plus its
        accumulated log-weight. Emitted once per engine.
        """
        from repro.inference.particles import Particle

        count_event(
            "repro_scalar_fallback_total",
            labels={
                "model": type(self.model).__name__,
                "mode": self.mode,
                "reason": getattr(exc, "reason", "structure"),
            },
        )
        warnings.warn(
            f"model {type(self.model).__name__} left the batched "
            f"delayed-sampling fragment mid-stream ({exc}); migrating "
            f"{self.n_particles} particles to the scalar "
            f"{self.mode} engine (serial execution)",
            RuntimeWarning,
            stacklevel=3,
        )
        engine = self._build_scalar_engine()
        self._scalar_engine = engine
        chain_state, log_weights = self._collect_population(state)
        if chain_state is None:
            # Failed on the very first step: nothing to migrate.
            return engine.init()
        model_state = chain_state.model_state
        if chain_state.graph is not None:
            graph = chain_state.graph
            graph.rng = self.rng
            model_state = BatchedDelayedCtx(graph).value(model_state)
        n = chain_state.n

        def row(leaf: Any, i: int) -> Any:
            if (
                isinstance(leaf, np.ndarray)
                and leaf.ndim >= 1
                and leaf.shape[0] == n
            ):
                value = leaf[i]
                return value.item() if np.ndim(value) == 0 else np.array(value)
            return leaf

        particles = []
        for i in range(n):
            scalar_state = _map_leaves(model_state, lambda leaf: row(leaf, i))
            graph_i = engine._fresh_graph() if engine.persistent_graph else None
            particles.append(Particle(scalar_state, graph_i, float(log_weights[i])))
        return particles


class VectorizedBetaBernoulliSDS(VectorizedEngine):
    """Exact SDS for the Beta-Bernoulli chain (Coin model), batched.

    Under SDS the Coin model's Beta prior is never sampled: every
    Bernoulli observation conditions it analytically, so each particle's
    marginal is ``Beta(alpha + heads, beta + tails)`` and the weight is
    the posterior-predictive mass of the observation. The whole
    population is two parameter vectors and the step is pure conjugate
    arithmetic — no randomness at all, matching the scalar SDS engine
    where a single particle is already exact.

    ``model`` must expose ``alpha`` / ``beta_param`` (``CoinModel``).
    """

    _PARAMS = ("alpha", "beta_param")

    def __init__(self, model: Any, **kwargs):
        if not all(hasattr(model, p) for p in self._PARAMS):
            raise InferenceError(
                f"model {type(model).__name__} is not a Beta-Bernoulli "
                "chain; VectorizedBetaBernoulliSDS needs alpha/beta_param"
            )
        super().__init__(model, **kwargs)

    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        return (
            np.full(n, float(self.model.alpha)),
            np.full(n, float(self.model.beta_param)),
        )

    def _step_batch(self, state: Any, yobs: Any, n: int, rng: np.random.Generator):
        alpha, beta = state
        yobs = bool(yobs)
        step_logw = beta_bernoulli_log_prob(yobs, alpha, beta)
        alpha, beta = beta_bernoulli_update(yobs, alpha, beta)
        return (alpha, beta), (alpha, beta), step_logw

    def _output_distribution(self, outs, weights) -> Distribution:
        alpha, beta = outs
        return BetaMixtureArray(alpha, beta, weights)


class VectorizedOutlierSDS(VectorizedEngine):
    """Rao-Blackwellized SDS for the Outlier model, batched (retired).

    The scalar SDS engine keeps two symbolic chains per particle: the
    conjugate Gaussian position and the Beta outlier probability, whose
    Bernoulli child is force-realized each step (``ctx.value``) to
    branch on. Batched, that becomes: draw the indicator from the
    posterior predictive ``alpha/(alpha+beta)``, condition the Beta on
    the realized value, and apply the Kalman update / predictive weight
    only where the sensor is trusted — a masked blend over the
    population, one array operation per quantity.

    Since PR 5 the Outlier model runs on the *generic* batched DS graph
    (``VectorizedGaussianChainSDS`` over a
    :class:`~repro.vectorized.models.GraphOutlierModel` adapter), whose
    per-particle masked affine edge performs exactly this arithmetic —
    bit-identical at a fixed seed. This hand-written engine is no
    longer registered; it survives as the equivalence oracle in the
    test suite (``tests/vectorized/test_generic_graph.py``).
    """

    _PARAMS = (
        "prior_mean",
        "prior_var",
        "motion_var",
        "obs_var",
        "outlier_alpha",
        "outlier_beta",
        "outlier_mean",
        "outlier_var",
    )

    def __init__(self, model: Any, **kwargs):
        if not all(hasattr(model, p) for p in self._PARAMS):
            raise InferenceError(
                f"model {type(model).__name__} is not Outlier-shaped; "
                "VectorizedOutlierSDS needs prior/motion/obs/outlier parameters"
            )
        super().__init__(model, **kwargs)

    def _init_batch_state(self, n: int, rng: np.random.Generator) -> Any:
        return None  # (alpha, beta, post_mean, post_var) after step 1

    def _step_batch(self, state: Any, yobs: Any, n: int, rng: np.random.Generator):
        model = self.model
        if state is None:
            alpha = np.full(n, float(model.outlier_alpha))
            beta = np.full(n, float(model.outlier_beta))
            pred_mean = np.full(n, float(model.prior_mean))
            pred_var = np.full(n, float(model.prior_var))
        else:
            alpha, beta, post_mean, post_var = state
            pred_mean = post_mean
            pred_var = post_var + model.motion_var
        # Forced realization of the indicator: sample the posterior
        # predictive, then condition the Beta on the drawn value.
        is_outlier = bernoulli_sample(beta_bernoulli_predictive(alpha, beta), rng)
        alpha, beta = beta_bernoulli_update(is_outlier, alpha, beta)
        yobs = float(yobs)
        gain = pred_var / (pred_var + model.obs_var)
        upd_mean = pred_mean + gain * (yobs - pred_mean)
        upd_var = (1.0 - gain) * pred_var
        step_logw = np.where(
            is_outlier,
            gaussian_log_prob(yobs, model.outlier_mean, model.outlier_var),
            gaussian_log_prob(yobs, pred_mean, pred_var + model.obs_var),
        )
        post_mean = np.where(is_outlier, pred_mean, upd_mean)
        post_var = np.where(is_outlier, pred_var, upd_var)
        return (
            (post_mean, post_var),
            (alpha, beta, post_mean, post_var),
            step_logw,
        )

    def _output_distribution(self, outs, weights) -> Distribution:
        post_mean, post_var = outs
        return GaussianMixtureArray(post_mean, post_var, weights)


def make_vectorized_engine(method_key: str, model: Any, **kwargs) -> Optional[VectorizedEngine]:
    """The vectorized engine for a ``(method, model)`` pair, or None.

    This is the fallback policy behind ``infer(..., backend=...)``:

    * ``"pf"`` vectorizes whenever the model has a batched equivalent;
    * ``"sds"`` vectorizes models whose delayed-sampling semantics has a
      registered engine — the ``SDS_ENGINES`` registry (the closed-form
      Beta-Bernoulli Coin engine, plus any model routed to
      :class:`VectorizedGaussianChainSDS` by
      ``register_ds_graph_model`` — linear-Gaussian chains and, since
      the generic graph, tree-shaped models like Outlier) or the
      conjugate Gaussian chains of :class:`VectorizedKalmanSDS`
      (registered via ``register_conjugate_gaussian_chain`` — exact
      classes only, because a subclass may override ``step`` with
      non-conjugate structure the closed-form update would miss);
    * ``"bds"`` vectorizes models in the ``BDS_ENGINES`` registry —
      models running on the generic array-native graph of
      :mod:`repro.vectorized.sds_graph` with forced end-of-step
      realization.

    Everything else (``"ds"``, ``"importance"``, unknown models)
    reports None so the caller uses the scalar engine.
    """
    from repro.vectorized.models import (
        BDS_ENGINES,
        CONJUGATE_GAUSSIAN_CHAINS,
        SDS_ENGINES,
        VectorizedKalman,
    )

    if method_key in ("pf", "particle_filter"):
        batched = vectorize_model(model)
        if batched is None:
            return None
        return VectorizedParticleFilter(batched, **kwargs)
    if method_key == "sds":
        factory = SDS_ENGINES.get(type(model))
        if factory is not None:
            return factory(model, **kwargs)
        if type(model) in CONJUGATE_GAUSSIAN_CHAINS or isinstance(model, VectorizedKalman):
            return VectorizedKalmanSDS(model, **kwargs)
        return None
    if method_key == "bds":
        factory = BDS_ENGINES.get(type(model))
        if factory is not None:
            return factory(model, **kwargs)
        return None
    return None
