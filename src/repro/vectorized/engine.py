"""Vectorized inference engines.

These engines implement the same streaming contract as the scalar
engines of :mod:`repro.inference.engine` — ``init`` / ``step`` over an
externalized state, output a posterior :class:`~repro.dists.Distribution`
per synchronous instant — but their state is one
:class:`~repro.vectorized.batch.ParticleBatch` instead of a list of
:class:`~repro.inference.particles.Particle` objects, and one ``step``
is a constant number of array operations regardless of the particle
count:

* :class:`VectorizedParticleFilter` — the bootstrap particle filter of
  Section 5.1 over a :class:`~repro.vectorized.models.VectorizedModel`;
  statistically equivalent to :class:`~repro.inference.engine.ParticleFilter`
  (same laws, different draw order).
* :class:`VectorizedKalmanSDS` — the streaming-delayed-sampling
  semantics (Section 5.3) for the paper's conjugate Gaussian chains
  (Kalman / Fig. 2 HMM): every particle's marginal is maintained as a
  closed-form mean/variance pair, so the engine performs batched Kalman
  predict/update arithmetic with Rao-Blackwellized weights and no
  per-particle graph objects.

Both subclass :class:`~repro.inference.engine.InferenceEngine`, reusing
its configuration surface (``resampler``, ``resample_threshold``,
``clone_on_resample``, diagnostics) — ``clone_on_resample`` is accepted
for interface compatibility but has no observable effect here, because
the array gather of :meth:`ParticleBatch.select` always materializes
fresh storage for every survivor.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro.dists import Distribution
from repro.errors import InferenceError
from repro.inference.engine import InferenceEngine
from repro.inference.resampling import normalize_log_weights
from repro.runtime.node import ProbNode
from repro.vectorized.batch import ParticleBatch
from repro.vectorized.dists import ArrayEmpirical, GaussianMixtureArray
from repro.vectorized.kernels import gaussian_log_prob
from repro.vectorized.models import VectorizedModel, vectorize_model

__all__ = [
    "VectorizedEngine",
    "VectorizedParticleFilter",
    "VectorizedKalmanSDS",
    "make_vectorized_engine",
]


class VectorizedEngine(InferenceEngine):
    """Base class for engines whose state is a :class:`ParticleBatch`."""

    def init(self) -> ParticleBatch:
        return ParticleBatch(
            state=self._init_batch_state(),
            log_weights=np.zeros(self.n_particles),
        )

    def step(self, batch: ParticleBatch, inp: Any) -> Tuple[Distribution, ParticleBatch]:
        outs, new_state, step_logw = self._step_batch(batch.state, inp)
        step_logw = np.asarray(step_logw, dtype=float)
        log_weights = batch.log_weights + step_logw
        weights = normalize_log_weights(log_weights)
        self._record_stats(batch.log_weights, step_logw, weights)
        output = self._output_distribution(outs, weights)
        stepped = ParticleBatch(new_state, log_weights)
        if self.resample and self._should_resample(weights):
            indices = self.resampler(weights, self.n_particles, self.rng)
            stepped = stepped.select(indices)
        return output, stepped

    def memory_words(self, batch: ParticleBatch) -> int:
        return batch.memory_words()

    # ------------------------------------------------------------------
    # hooks
    # ------------------------------------------------------------------
    def _init_batch_state(self) -> Any:
        raise NotImplementedError

    def _step_batch(self, state: Any, inp: Any):
        raise NotImplementedError


class VectorizedParticleFilter(VectorizedEngine):
    """Bootstrap particle filter advancing all particles per array step.

    ``model`` may be a :class:`VectorizedModel` or a scalar
    :class:`~repro.runtime.node.ProbNode` with a registered vectorized
    equivalent (see :func:`~repro.vectorized.models.vectorize_model`);
    anything else raises, and ``infer(..., backend=...)`` handles the
    fallback to the scalar engine.
    """

    def __init__(self, model: Any, **kwargs):
        batched = vectorize_model(model)
        if batched is None:
            raise InferenceError(
                f"model {type(model).__name__} has no vectorized equivalent; "
                "use the scalar ParticleFilter or register one with "
                "repro.vectorized.register_vectorizer"
            )
        super().__init__(model if isinstance(model, ProbNode) else batched, **kwargs)
        self.batched_model = batched

    def _init_batch_state(self) -> Any:
        return self.batched_model.init_batch(self.n_particles, self.rng)

    def _step_batch(self, state: Any, inp: Any):
        return self.batched_model.step_batch(state, inp, self.n_particles, self.rng)

    def _output_distribution(self, outs, weights) -> Distribution:
        return ArrayEmpirical(outs, weights)


class VectorizedKalmanSDS(VectorizedEngine):
    """Rao-Blackwellized SDS for the conjugate Gaussian chain, batched.

    Under SDS the Kalman/HMM models never sample: each particle's
    marginal over the position is the exact filtering posterior, and the
    particle weight is the marginal likelihood of the observation
    (Section 5.3). This engine stores those marginals as stacked
    ``(mean, variance)`` vectors and performs the predict / update /
    weight computations as whole-population array arithmetic — the SDS
    semantics with neither graph nodes nor per-particle clones.

    ``model`` must be a conjugate Gaussian chain: an object exposing
    ``prior_mean`` / ``prior_var`` / ``motion_var`` / ``obs_var`` whose
    transition is ``x_t ~ N(x_{t-1}, motion_var)`` observed through
    ``y_t ~ N(x_t, obs_var)`` (``KalmanModel`` and ``HmmModel``).
    """

    _PARAMS = ("prior_mean", "prior_var", "motion_var", "obs_var")

    def __init__(self, model: Any, **kwargs):
        if not all(hasattr(model, p) for p in self._PARAMS):
            raise InferenceError(
                f"model {type(model).__name__} is not a conjugate Gaussian "
                "chain; VectorizedKalmanSDS needs "
                "prior_mean/prior_var/motion_var/obs_var"
            )
        super().__init__(model, **kwargs)

    def _init_batch_state(self) -> Any:
        return None  # (posterior means, posterior variances) after step 1

    def _step_batch(self, state: Any, yobs: Any):
        n = self.n_particles
        if state is None:
            pred_mean = np.full(n, float(self.model.prior_mean))
            pred_var = np.full(n, float(self.model.prior_var))
        else:
            post_mean, post_var = state
            pred_mean = post_mean
            pred_var = post_var + self.model.motion_var
        yobs = float(yobs)
        # Rao-Blackwellized weight: the observation's marginal likelihood
        # under the predictive N(pred_mean, pred_var + obs_var).
        step_logw = gaussian_log_prob(yobs, pred_mean, pred_var + self.model.obs_var)
        gain = pred_var / (pred_var + self.model.obs_var)
        post_mean = pred_mean + gain * (yobs - pred_mean)
        post_var = (1.0 - gain) * pred_var
        return (post_mean, post_var), (post_mean, post_var), step_logw

    def _output_distribution(self, outs, weights) -> Distribution:
        post_mean, post_var = outs
        return GaussianMixtureArray(post_mean, post_var, weights)


def make_vectorized_engine(method_key: str, model: Any, **kwargs) -> Optional[VectorizedEngine]:
    """The vectorized engine for a ``(method, model)`` pair, or None.

    This is the fallback policy behind ``infer(..., backend=...)``:
    ``"pf"`` vectorizes whenever the model has a batched equivalent;
    ``"sds"`` vectorizes only the conjugate Gaussian chains whose exact
    delayed-sampling semantics :class:`VectorizedKalmanSDS` reproduces
    in closed form (registered via ``register_conjugate_gaussian_chain``
    — exact classes only, because a subclass may override ``step`` with
    non-conjugate structure the closed-form update would miss).
    Everything else (``"bds"``, ``"ds"``, ``"importance"``, unknown
    models) reports None so the caller uses the scalar engine.
    """
    from repro.vectorized.models import CONJUGATE_GAUSSIAN_CHAINS, VectorizedKalman

    if method_key in ("pf", "particle_filter"):
        batched = vectorize_model(model)
        if batched is None:
            return None
        return VectorizedParticleFilter(batched, **kwargs)
    if method_key == "sds":
        if type(model) in CONJUGATE_GAUSSIAN_CHAINS or isinstance(model, VectorizedKalman):
            return VectorizedKalmanSDS(model, **kwargs)
        return None
    return None
